package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"strings"
	"sync"
	"testing"

	"loggrep/internal/archive"
	"loggrep/internal/core"
	"loggrep/internal/loggen"
	"loggrep/internal/obsv"
	"loggrep/internal/otlp"
)

// syncBuffer lets the event log write from handler goroutines while the
// test reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// newWideEventServer is newTestServer plus an always-on wide-event log.
func newWideEventServer(t *testing.T) (*httptest.Server, *syncBuffer) {
	t.Helper()
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	buf := &syncBuffer{}
	sv.Events = obsv.NewEventLog(buf, 0, 0)
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	aopts := archive.DefaultOptions()
	aopts.BlockBytes = 80 << 10
	arcData, err := archive.Compress(block, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Load("arcA", arcData); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, buf
}

func parseEvents(t *testing.T, raw string) []obsv.WideEvent {
	t.Helper()
	var out []obsv.WideEvent
	sc := bufio.NewScanner(strings.NewReader(raw))
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		var ev obsv.WideEvent
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			t.Fatalf("wide event is not valid JSON: %v\n%s", err, sc.Text())
		}
		out = append(out, ev)
	}
	return out
}

// TestWideEventPerRequest: with -slowlog 0 semantics (threshold 0), every
// query and count request emits exactly one wide event whose trace id
// matches the X-Trace-Id response header and whose fields describe the
// query's real work.
func TestWideEventPerRequest(t *testing.T) {
	ts, buf := newWideEventServer(t)
	lt, _ := loggen.ByName("A")

	resp, err := http.Get(ts.URL + "/v1/query?source=boxA&q=" + escape(lt.Query))
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	headerID := resp.Header.Get("X-Trace-Id")
	if !regexp.MustCompile(`^[0-9a-f]{32}$`).MatchString(headerID) {
		t.Fatalf("X-Trace-Id = %q, want 32 hex chars", headerID)
	}
	var boxRes queryResponse
	getJSON(t, ts.URL+"/v1/query?source=arcA&q="+escape(lt.Query), http.StatusOK, &boxRes)
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/query?source=none&q=ERROR", http.StatusNotFound, nil)

	evs := parseEvents(t, buf.String())
	if len(evs) != 4 {
		t.Fatalf("got %d wide events, want 4:\n%s", len(evs), buf.String())
	}

	box := evs[0]
	if box.TraceID != headerID {
		t.Errorf("event trace id %q != X-Trace-Id %q", box.TraceID, headerID)
	}
	if box.Endpoint != "query" || box.Source != "boxA" || box.Command != lt.Query {
		t.Errorf("request identity wrong: %+v", box)
	}
	if box.Status != http.StatusOK || box.DurNS <= 0 || box.Time == "" || box.Version == "" {
		t.Errorf("outcome fields wrong: %+v", box)
	}
	if box.Matches == 0 || box.Lines != 3000 {
		t.Errorf("matches/lines wrong: matches=%d lines=%d", box.Matches, box.Lines)
	}
	if box.CapsuleScans == 0 || box.BytesScanned == 0 || box.Decompressions == 0 {
		t.Errorf("work counters empty: %+v", box)
	}
	if len(box.Spans) == 0 {
		t.Error("no span timings on box query event")
	}
	names := map[string]bool{}
	for _, sp := range box.Spans {
		names[sp.Name] = true
	}
	if !names["filter"] || !names["verify"] {
		t.Errorf("expected filter+verify spans, got %v", names)
	}

	arc := evs[1]
	if arc.Blocks == 0 || arc.BlocksSearched == 0 {
		t.Errorf("archive event missing block shape: %+v", arc)
	}
	if arc.CapsuleScans == 0 || arc.BytesScanned == 0 {
		t.Errorf("archive event missing engine work counters: %+v", arc)
	}
	if arc.Matches != box.Matches {
		t.Errorf("archive matches %d != box matches %d", arc.Matches, box.Matches)
	}

	count := evs[2]
	if count.Endpoint != "count" || count.Status != http.StatusOK || count.Matches == 0 {
		t.Errorf("count event wrong: %+v", count)
	}

	miss := evs[3]
	if miss.Status != http.StatusNotFound || miss.Error == "" {
		t.Errorf("error event wrong: %+v", miss)
	}
}

// TestWideEventBudgetAndCache: budget caps land in the event, and a
// repeated query is visibly a cache hit.
func TestWideEventBudgetAndCache(t *testing.T) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	buf := &syncBuffer{}
	sv.Events = obsv.NewEventLog(buf, 0, 0)
	sv.Budget = core.Budget{MaxScannedBytes: 1 << 30, MaxDecompressions: 1 << 20}
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)

	url := ts.URL + "/v1/query?source=boxA&q=" + escape(lt.Query)
	getJSON(t, url, http.StatusOK, nil)
	getJSON(t, url, http.StatusOK, nil)

	evs := parseEvents(t, buf.String())
	if len(evs) != 2 {
		t.Fatalf("got %d events, want 2", len(evs))
	}
	if evs[0].BudgetScanBytes != 1<<30 || evs[0].BudgetDecompressions != 1<<20 {
		t.Errorf("budget caps missing: %+v", evs[0])
	}
	if evs[0].CacheHit {
		t.Errorf("first query reported as cache hit: %+v", evs[0])
	}
	if !evs[1].CacheHit {
		t.Errorf("repeat query not reported as cache hit: %+v", evs[1])
	}
}

// TestWideEventSlowlogThreshold: a high threshold suppresses fast requests
// entirely.
func TestWideEventSlowlogThreshold(t *testing.T) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 1000)
	sv := New()
	buf := &syncBuffer{}
	sv.Events = obsv.NewEventLog(buf, 1<<62, 0)
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	getJSON(t, ts.URL+"/v1/query?source=boxA&q=ERROR", http.StatusOK, nil)
	if got := buf.String(); got != "" {
		t.Errorf("fast request emitted despite huge threshold:\n%s", got)
	}
	if sv.Events.Emitted() != 0 {
		t.Errorf("Emitted = %d, want 0", sv.Events.Emitted())
	}
}

// TestMetricsExemplarJoinsWideEvent: the /metrics latency histogram for the
// query endpoint carries an exemplar whose trace id matches one of the
// emitted wide events — the join the forensics runbook relies on.
func TestMetricsExemplarJoinsWideEvent(t *testing.T) {
	ts, buf := newWideEventServer(t)
	lt, _ := loggen.ByName("A")
	for i := 0; i < 3; i++ {
		getJSON(t, ts.URL+"/v1/query?source=boxA&q="+escape(lt.Query), http.StatusOK, nil)
	}
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	body, _ := io.ReadAll(resp.Body)
	resp.Body.Close()

	re := regexp.MustCompile(`# EXEMPLAR loggrep_http_request_ns\{endpoint="query"\}.*trace_id="([0-9a-f]{32})"`)
	ms := re.FindAllStringSubmatch(string(body), -1)
	if len(ms) == 0 {
		t.Fatalf("/metrics has no exemplar for the query endpoint:\n%s", body)
	}
	evIDs := map[string]bool{}
	for _, ev := range parseEvents(t, buf.String()) {
		evIDs[ev.TraceID] = true
	}
	joined := false
	for _, m := range ms {
		if evIDs[m[1]] {
			joined = true
		}
	}
	if !joined {
		t.Errorf("no exemplar trace id %v found among wide events %v", ms, evIDs)
	}
}

// benchQueries drives b.N distinct queries (unique needle per iteration,
// defeating the query cache) through the full handler stack.
func benchQueries(b *testing.B, events bool) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	if events {
		sv.Events = obsv.NewEventLog(io.Discard, 0, 0)
	}
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		b.Fatal(err)
	}
	h := sv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("GET", fmt.Sprintf("/v1/query?source=boxA&q=needle%dmissing", i), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// The pair behind the "<2% overhead" claim in EXPERIMENTS.md: identical
// uncached query work with the wide-event log (and its forced tracing +
// exemplars) on and off.
func BenchmarkQueryBaseline(b *testing.B)   { benchQueries(b, false) }
func BenchmarkQueryWideEvents(b *testing.B) { benchQueries(b, true) }

// BenchmarkQueryOTLP adds the full export pipeline to the wide-event
// path: every request's event is converted and POSTed (in background
// batches) to a local collector. Paired against BenchmarkQueryWideEvents
// it isolates the exporter's hot-path cost — which must be one
// non-blocking channel send; the conversion and HTTP work ride the
// background goroutine.
func BenchmarkQueryOTLP(b *testing.B) {
	collector := httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		io.Copy(io.Discard, r.Body)
		w.WriteHeader(http.StatusOK)
	}))
	defer collector.Close()
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	sv.Events = obsv.NewEventLog(io.Discard, 0, 0)
	exp := otlp.New(otlp.Config{Endpoint: collector.URL})
	exp.Start()
	defer exp.Close(context.Background())
	sv.OTLP = exp
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		b.Fatal(err)
	}
	h := sv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("GET", fmt.Sprintf("/v1/query?source=boxA&q=needle%dmissing", i), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}

// BenchmarkQueryTracedOnly isolates the forced-tracing share of the
// wide-event cost: tracing on, no event log.
func BenchmarkQueryTracedOnly(b *testing.B) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		b.Fatal(err)
	}
	h := sv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("GET", fmt.Sprintf("/v1/query?source=boxA&q=needle%dmissing&trace=1", i), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
