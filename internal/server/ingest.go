package server

import (
	"context"
	"errors"
	"io"
	"net/http"
	"time"

	"loggrep/internal/core"
	"loggrep/internal/ingest"
)

// ingestSource adapts a live ingest stream to the querier interface so
// /v1/query, /v1/count and /v1/entry serve it like any loaded source.
// Ingest queries are not traced (no per-stage spans yet); the wide event
// still carries outcome, duration and admission state.
type ingestSource struct{ st *ingest.Stream }

func (s *ingestSource) query(ctx context.Context, cmd string, traced bool, budget core.Budget) (*queryResult, error) {
	res, err := s.st.Query(ctx, cmd, 0, budget)
	if err != nil {
		return nil, err
	}
	return &queryResult{
		lines: res.Lines, entries: res.Entries, damaged: res.Damaged,
		partial: res.Partial, partialReason: res.PartialReason,
	}, nil
}

func (s *ingestSource) count(ctx context.Context, cmd string) (matches, damaged int, err error) {
	res, err := s.st.Query(ctx, cmd, 0, core.Budget{})
	if err != nil {
		return 0, 0, err
	}
	return len(res.Lines), len(res.Damaged), nil
}

func (s *ingestSource) entry(line int) (string, error) {
	return s.st.Entry(line)
}

// ingestResponse is the POST /ingest body: how many lines were durably
// acknowledged, per stream. On a 429 the counts are still authoritative —
// everything counted was accepted before the budget filled; resend the
// rest.
type ingestResponse struct {
	Accepted  int            `json:"accepted"`
	Streams   map[string]int `json:"streams,omitempty"`
	ElapsedMS float64        `json:"elapsed_ms"`
	Error     string         `json:"error,omitempty"`
}

// handleIngest is the write path: POST /ingest?tenant=T&stream=S with a
// body of newline-separated log lines (or NDJSON records with
// Content-Type: application/x-ndjson). The batch is WAL-appended and
// fsynced before the 200 — an acknowledged line survives a crash.
// Admission control applies as for queries (503 draining, 429 when the
// wait queue is full), and a full tenant buffer answers 429 +
// Retry-After: the admission layer's backpressure contract extended to
// memory, not just concurrency.
func (sv *Server) handleIngest(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ev := sv.startEvent(r, "ingest")
	tenant := paramOr(r, "tenant", "default")
	stream := paramOr(r, "stream", "default")
	if ev != nil {
		ev.Source = tenant + "/" + stream
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		sv.finishEvent(ev, t0, admitState{}, http.StatusMethodNotAllowed, "")
		return
	}
	if sv.Ingest == nil {
		msg := "ingest disabled (start loggrepd with -ingest)"
		httpError(w, http.StatusNotFound, msg)
		sv.finishEvent(ev, t0, admitState{}, http.StatusNotFound, msg)
		return
	}
	release, adm, ok := sv.admit(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, adm.status, "")
		return
	}
	defer release()
	body, err := io.ReadAll(io.LimitReader(r.Body, int64(MaxIngestBytes)+1))
	if err != nil {
		msg := "read body: " + err.Error()
		httpError(w, http.StatusBadRequest, msg)
		sv.finishEvent(ev, t0, adm, http.StatusBadRequest, msg)
		return
	}
	if len(body) > MaxIngestBytes {
		httpError(w, http.StatusRequestEntityTooLarge, "batch too large")
		sv.finishEvent(ev, t0, adm, http.StatusRequestEntityTooLarge, "batch too large")
		return
	}
	batch, err := ingest.ParseBatch(r.Header.Get("Content-Type"), body, stream)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		sv.finishEvent(ev, t0, adm, http.StatusBadRequest, err.Error())
		return
	}
	// The request context carries the trace identity into the append
	// (exemplars) and, via blob stats, any WAL/segment reads it triggers.
	// Ingest requests register in the live-ops in-flight view too, with a
	// cancel-cause hook so DELETE /v1/inflight/{id} can abort a batch
	// between stream appends (acknowledged lines stay durable).
	ictx, icancel := context.WithCancelCause(r.Context())
	defer icancel(nil)
	ctx, bst := withBlobStats(ictx, ev)
	ctx, doneInflight := sv.beginLiveops(ctx, r, ev, "ingest", icancel)
	defer doneInflight()
	resp := ingestResponse{Streams: map[string]int{}}
	var appendErr error
	for _, s := range batch.Streams {
		if appendErr = sv.Ingest.AppendContext(ctx, tenant, s, batch.Groups[s]); appendErr != nil {
			break
		}
		resp.Accepted += len(batch.Groups[s])
		resp.Streams[tenant+"/"+s] = len(batch.Groups[s])
	}
	stampBlobStats(ev, bst)
	resp.ElapsedMS = float64(time.Since(t0).Microseconds()) / 1000
	if len(resp.Streams) == 0 {
		resp.Streams = nil
	}
	if ev != nil {
		ev.Matches = int64(resp.Accepted) // accepted lines, the ingest "result size"
		ev.IngestBytes = int64(len(body))
		ev.IngestLines = int64(resp.Accepted)
	}
	status := http.StatusOK
	switch {
	case errors.Is(appendErr, ingest.ErrBackpressure):
		status = http.StatusTooManyRequests
		w.Header().Set("Retry-After", "1")
	case errors.Is(appendErr, ingest.ErrBadInput):
		status = http.StatusBadRequest
	case appendErr != nil:
		status = http.StatusInternalServerError
	}
	var errMsg string
	if appendErr != nil {
		errMsg = appendErr.Error()
		resp.Error = errMsg
	}
	writeJSON(w, status, resp)
	sv.finishEvent(ev, t0, adm, status, errMsg)
}

// handleIngestSeal forces a stream's raw tail into sealed archive
// segments: POST /ingest/seal?tenant=T&stream=S blocks until every
// segment of the stream is a sealed, index-bearing archive on disk.
// Operators use it before copying segments off the box; the INGEST.md
// quickstart uses it to make `loggrep query` over a sealed segment
// deterministic.
func (sv *Server) handleIngestSeal(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ev := sv.startEvent(r, "ingest_seal")
	tenant := paramOr(r, "tenant", "default")
	stream := paramOr(r, "stream", "default")
	if ev != nil {
		ev.Source = tenant + "/" + stream
	}
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		sv.finishEvent(ev, t0, admitState{}, http.StatusMethodNotAllowed, "")
		return
	}
	if sv.Ingest == nil {
		msg := "ingest disabled (start loggrepd with -ingest)"
		httpError(w, http.StatusNotFound, msg)
		sv.finishEvent(ev, t0, admitState{}, http.StatusNotFound, msg)
		return
	}
	release, adm, ok := sv.admit(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, adm.status, "")
		return
	}
	defer release()
	err := sv.Ingest.TriggerSeal(tenant, stream)
	switch {
	case errors.Is(err, ingest.ErrBadInput):
		httpError(w, http.StatusNotFound, err.Error())
		sv.finishEvent(ev, t0, adm, http.StatusNotFound, err.Error())
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
		sv.finishEvent(ev, t0, adm, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]any{
			"sealed":     tenant + "/" + stream,
			"elapsed_ms": float64(time.Since(t0).Microseconds()) / 1000,
		})
		sv.finishEvent(ev, t0, adm, http.StatusOK, "")
	}
}

func paramOr(r *http.Request, name, def string) string {
	if v := r.URL.Query().Get(name); v != "" {
		return v
	}
	return def
}
