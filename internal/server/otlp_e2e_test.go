package server

import (
	"context"
	"encoding/json"
	"io"
	"net/http"
	"net/http/httptest"
	"regexp"
	"sync"
	"testing"
	"time"

	"loggrep/internal/core"
	"loggrep/internal/loggen"
	"loggrep/internal/obsv"
	"loggrep/internal/otlp"
)

// otlpSink is a minimal OTLP/HTTP collector for e2e tests: it decodes
// trace payloads just far enough to extract span identities.
type otlpSink struct {
	srv *httptest.Server

	mu    sync.Mutex
	spans []sinkSpan
}

type sinkSpan struct {
	TraceID      string `json:"traceId"`
	SpanID       string `json:"spanId"`
	ParentSpanID string `json:"parentSpanId"`
	Name         string `json:"name"`
	Kind         int    `json:"kind"`
}

func newOTLPSink(t *testing.T) *otlpSink {
	t.Helper()
	s := &otlpSink{}
	s.srv = httptest.NewServer(http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		body, _ := io.ReadAll(r.Body)
		if r.URL.Path == "/v1/traces" {
			var payload struct {
				ResourceSpans []struct {
					ScopeSpans []struct {
						Spans []sinkSpan `json:"spans"`
					} `json:"scopeSpans"`
				} `json:"resourceSpans"`
			}
			if err := json.Unmarshal(body, &payload); err != nil {
				t.Errorf("collector got bad traces JSON: %v\n%s", err, body)
			}
			s.mu.Lock()
			for _, rs := range payload.ResourceSpans {
				for _, ss := range rs.ScopeSpans {
					s.spans = append(s.spans, ss.Spans...)
				}
			}
			s.mu.Unlock()
		}
		w.WriteHeader(http.StatusOK)
	}))
	t.Cleanup(s.srv.Close)
	return s
}

func (s *otlpSink) snapshot() []sinkSpan {
	s.mu.Lock()
	defer s.mu.Unlock()
	return append([]sinkSpan(nil), s.spans...)
}

// TestTraceJoinAcrossAllLayers is the cross-layer identity proof: one
// request carrying an external W3C traceparent must surface the SAME
// trace id in (1) the X-Trace-Id response header, (2) the echoed
// traceparent, (3) the wide event, (4) the /metrics latency exemplar,
// and (5) the exported OTLP span — whose parent must be the caller's
// span.
func TestTraceJoinAcrossAllLayers(t *testing.T) {
	sink := newOTLPSink(t)
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 500)
	sv := New()
	buf := &syncBuffer{}
	sv.Events = obsv.NewEventLog(buf, 0, 0)
	exp := otlp.New(otlp.Config{
		Endpoint: sink.srv.URL,
		Interval: 10 * time.Millisecond,
	})
	exp.Start()
	sv.OTLP = exp
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)

	const (
		callerTrace = "4bf92f3577b34da6a3ce929d0e0e4736"
		callerSpan  = "00f067aa0ba902b7"
	)
	req, err := http.NewRequest(http.MethodGet,
		ts.URL+"/v1/query?source=boxA&q="+escape(lt.Query), nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("traceparent", "00-"+callerTrace+"-"+callerSpan+"-01")
	req.Header.Set("tracestate", "congo=t61rcWkgMzE")
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("status %d", resp.StatusCode)
	}

	// (1) X-Trace-Id joined the caller's trace.
	if got := resp.Header.Get("X-Trace-Id"); got != callerTrace {
		t.Errorf("X-Trace-Id = %q, want caller's %q", got, callerTrace)
	}
	// (2) The echoed traceparent carries the same trace with our own span.
	tp := resp.Header.Get("traceparent")
	tc, ok := otlp.ParseTraceparent(tp)
	if !ok {
		t.Fatalf("response traceparent %q does not parse", tp)
	}
	if tc.TraceID != callerTrace {
		t.Errorf("response traceparent trace = %q, want %q", tc.TraceID, callerTrace)
	}
	if tc.SpanID == callerSpan {
		t.Error("response traceparent span id is the caller's; this process must open its own span")
	}

	// (3) The wide event carries the full joined identity.
	evs := parseEvents(t, buf.String())
	if len(evs) != 1 {
		t.Fatalf("got %d wide events, want 1", len(evs))
	}
	ev := evs[0]
	if ev.TraceID != callerTrace || ev.SpanID != tc.SpanID || ev.ParentSpanID != callerSpan {
		t.Errorf("wide event identity = %s/%s/%s, want %s/%s/%s",
			ev.TraceID, ev.SpanID, ev.ParentSpanID, callerTrace, tc.SpanID, callerSpan)
	}
	if ev.TraceState != "congo=t61rcWkgMzE" {
		t.Errorf("tracestate = %q, not carried through", ev.TraceState)
	}

	// (4) The /metrics latency exemplar records the same trace id.
	mresp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	mbody, _ := io.ReadAll(mresp.Body)
	mresp.Body.Close()
	// The histogram keeps one exemplar per latency bucket, process-wide;
	// other tests' queries populate other buckets, so the join holds when
	// ANY bucket's exemplar carries this request's trace id.
	exRE := regexp.MustCompile(`# EXEMPLAR loggrep_http_request_ns\{endpoint="query"\}.*trace_id="([0-9a-f]{32})"`)
	ms := exRE.FindAllStringSubmatch(string(mbody), -1)
	if len(ms) == 0 {
		t.Fatal("/metrics has no query-endpoint exemplar")
	}
	var exemplarJoined bool
	for _, m := range ms {
		if m[1] == callerTrace {
			exemplarJoined = true
		}
	}
	if !exemplarJoined {
		t.Errorf("no exemplar carries trace id %q: %v", callerTrace, ms)
	}

	// (5) The exported OTLP root span joins the caller's trace as a child
	// of the caller's span; stage children hang off the root.
	deadline := time.Now().Add(5 * time.Second)
	var root *sinkSpan
	for time.Now().Before(deadline) && root == nil {
		for _, sp := range sink.snapshot() {
			if sp.Kind == 2 && sp.Name == "query" {
				root = &sp
				break
			}
		}
		time.Sleep(5 * time.Millisecond)
	}
	if root == nil {
		t.Fatal("no exported OTLP root span arrived at the collector")
	}
	if root.TraceID != callerTrace {
		t.Errorf("OTLP span trace = %q, want caller's %q", root.TraceID, callerTrace)
	}
	if root.SpanID != tc.SpanID {
		t.Errorf("OTLP span id = %q, want the traceparent's %q", root.SpanID, tc.SpanID)
	}
	if root.ParentSpanID != callerSpan {
		t.Errorf("OTLP span parent = %q, want the caller's span %q", root.ParentSpanID, callerSpan)
	}
	var children int
	for _, sp := range sink.snapshot() {
		if sp.ParentSpanID == root.SpanID {
			children++
		}
	}
	if children == 0 {
		t.Error("no stage child spans exported under the root")
	}

	if err := exp.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}

// TestOTLPForcesEventWithoutLog: OTLP alone (no event log, no flight
// recorder) is enough to produce wide events and exported spans — the
// startEvent guard includes the exporter.
func TestOTLPForcesEventWithoutLog(t *testing.T) {
	sink := newOTLPSink(t)
	lt, _ := loggen.ByName("A")
	sv := New()
	exp := otlp.New(otlp.Config{Endpoint: sink.srv.URL, Interval: 10 * time.Millisecond})
	exp.Start()
	sv.OTLP = exp
	if err := sv.Load("boxA", core.Compress(lt.Block(3, 300), core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	getJSON(t, ts.URL+"/v1/query?source=boxA&q="+escape(lt.Query), http.StatusOK, nil)
	deadline := time.Now().Add(5 * time.Second)
	for time.Now().Before(deadline) {
		if len(sink.snapshot()) > 0 {
			break
		}
		time.Sleep(5 * time.Millisecond)
	}
	if len(sink.snapshot()) == 0 {
		t.Fatal("no spans exported with OTLP as the only event consumer")
	}
	if err := exp.Close(context.Background()); err != nil {
		t.Fatal(err)
	}
}
