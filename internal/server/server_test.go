package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"testing"

	"loggrep/internal/archive"
	"loggrep/internal/core"
	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
)

func newTestServer(t *testing.T) (*httptest.Server, []string) {
	t.Helper()
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	lines := logparse.SplitLines(block)
	sv := New()
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	aopts := archive.DefaultOptions()
	aopts.BlockBytes = 80 << 10
	arcData, err := archive.Compress(block, aopts)
	if err != nil {
		t.Fatal(err)
	}
	if err := sv.Load("arcA", arcData); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, lines
}

func getJSON(t *testing.T, url string, wantCode int, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("GET %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("decode: %v", err)
		}
	}
}

func TestHealthz(t *testing.T) {
	ts, _ := newTestServer(t)
	var out map[string]any
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &out)
	if out["status"] != "ok" {
		t.Fatalf("health = %v", out)
	}
	if n, ok := out["sources"].(float64); !ok || n != 2 {
		t.Fatalf("sources = %v, want 2", out["sources"])
	}
}

func TestListSources(t *testing.T) {
	ts, _ := newTestServer(t)
	var out []SourceInfo
	getJSON(t, ts.URL+"/v1/sources", http.StatusOK, &out)
	if len(out) != 2 {
		t.Fatalf("sources = %+v", out)
	}
	if out[0].Name != "arcA" || out[0].Kind != "archive" || out[0].Blocks < 2 {
		t.Fatalf("archive source = %+v", out[0])
	}
	if out[1].Name != "boxA" || out[1].Kind != "box" || out[1].Lines != 3000 {
		t.Fatalf("box source = %+v", out[1])
	}
}

func TestQueryBoxAndArchiveAgree(t *testing.T) {
	ts, lines := newTestServer(t)
	lt, _ := loggen.ByName("A")
	q := "?q=" + escape(lt.Query)
	var boxRes, arcRes queryResponse
	getJSON(t, ts.URL+"/v1/query?source=boxA&"+q[1:], http.StatusOK, &boxRes)
	getJSON(t, ts.URL+"/v1/query?source=arcA&"+q[1:], http.StatusOK, &arcRes)
	if boxRes.Matches == 0 || boxRes.Matches != arcRes.Matches {
		t.Fatalf("box %d vs archive %d matches", boxRes.Matches, arcRes.Matches)
	}
	for i := range boxRes.Lines {
		if boxRes.Lines[i] != arcRes.Lines[i] || boxRes.Entries[i] != arcRes.Entries[i] {
			t.Fatalf("mismatch at %d", i)
		}
		if boxRes.Entries[i] != lines[boxRes.Lines[i]] {
			t.Fatalf("entry %d is not the raw line", i)
		}
	}
}

func TestCountEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var count struct {
		Matches int `json:"matches"`
	}
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, &count)
	var full queryResponse
	getJSON(t, ts.URL+"/v1/query?source=boxA&q=ERROR", http.StatusOK, &full)
	if count.Matches != full.Matches {
		t.Fatalf("count %d != query %d", count.Matches, full.Matches)
	}
}

func TestEntryEndpoint(t *testing.T) {
	ts, lines := newTestServer(t)
	for _, src := range []string{"boxA", "arcA"} {
		var out struct {
			Entry string `json:"entry"`
		}
		getJSON(t, fmt.Sprintf("%s/v1/entry?source=%s&line=42", ts.URL, src), http.StatusOK, &out)
		if out.Entry != lines[42] {
			t.Fatalf("%s entry 42 = %q, want %q", src, out.Entry, lines[42])
		}
	}
	getJSON(t, ts.URL+"/v1/entry?source=boxA&line=999999", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/entry?source=boxA&line=abc", http.StatusBadRequest, nil)
}

func TestErrorPaths(t *testing.T) {
	ts, _ := newTestServer(t)
	getJSON(t, ts.URL+"/v1/query?source=nope&q=x", http.StatusNotFound, nil)
	getJSON(t, ts.URL+"/v1/query?source=boxA", http.StatusBadRequest, nil)
	getJSON(t, ts.URL+"/v1/query?source=boxA&q="+escape("AND AND"), http.StatusBadRequest, nil)
}

func TestUploadAndDelete(t *testing.T) {
	ts, _ := newTestServer(t)
	lt, _ := loggen.ByName("S")
	data := core.Compress(lt.Block(1, 500), core.DefaultOptions())

	req, _ := http.NewRequest(http.MethodPut, ts.URL+"/v1/sources/sudo", bytes.NewReader(data))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusCreated {
		t.Fatalf("upload status %d", resp.StatusCode)
	}
	var qres queryResponse
	getJSON(t, ts.URL+"/v1/query?source=sudo&q="+escape(lt.Query), http.StatusOK, &qres)
	if qres.Matches == 0 {
		t.Fatal("uploaded source does not answer")
	}

	req, _ = http.NewRequest(http.MethodDelete, ts.URL+"/v1/sources/sudo", nil)
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("delete status %d", resp.StatusCode)
	}
	getJSON(t, ts.URL+"/v1/query?source=sudo&q=x", http.StatusNotFound, nil)

	// Garbage uploads are rejected.
	req, _ = http.NewRequest(http.MethodPut, ts.URL+"/v1/sources/bad", bytes.NewReader([]byte("junk")))
	resp, err = http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("garbage upload status %d", resp.StatusCode)
	}
}

func TestConcurrentQueries(t *testing.T) {
	ts, _ := newTestServer(t)
	done := make(chan error, 16)
	for i := 0; i < 16; i++ {
		go func(i int) {
			src := []string{"boxA", "arcA"}[i%2]
			resp, err := http.Get(ts.URL + "/v1/query?source=" + src + "&q=ERROR")
			if err == nil {
				resp.Body.Close()
				if resp.StatusCode != http.StatusOK {
					err = fmt.Errorf("status %d", resp.StatusCode)
				}
			}
			done <- err
		}(i)
	}
	for i := 0; i < 16; i++ {
		if err := <-done; err != nil {
			t.Fatal(err)
		}
	}
}

func escape(q string) string {
	// crude query escaping for tests
	out := ""
	for _, c := range q {
		switch c {
		case ' ':
			out += "%20"
		case '#':
			out += "%23"
		case '+':
			out += "%2B"
		case '&':
			out += "%26"
		default:
			out += string(c)
		}
	}
	return out
}
