package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"path/filepath"
	"strings"
	"syscall"
	"testing"
	"time"

	"loggrep/internal/core"
	"loggrep/internal/flightrec"
	"loggrep/internal/loggen"
	"loggrep/internal/obsv"
)

// newFlightRecServer is newTestServer with the flight recorder wired the
// way loggrepd wires it: private bundle dir, the server's source summary
// as live state, and a long cooldown so stray async dumps can't race the
// test dir's cleanup. mut adjusts the config before the recorder is built.
func newFlightRecServer(t *testing.T, mut func(*flightrec.Config)) (*httptest.Server, *Server, *flightrec.Recorder) {
	t.Helper()
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	cfg := flightrec.Config{
		Dir:           filepath.Join(t.TempDir(), "flightrec"),
		EventRingSize: 32,
		Cooldown:      time.Hour,
		Registry:      obsv.NewRegistry(),
		StateFn:       func() any { return sv.SourcesSummary() },
	}
	if mut != nil {
		mut(&cfg)
	}
	rec := flightrec.NewRecorder(cfg)
	sv.FlightRec = rec
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv, rec
}

// waitForServerBundles polls dir until n bundles exist (dump triggers are
// asynchronous).
func waitForServerBundles(t *testing.T, dir string, n int) []string {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		m, _ := filepath.Glob(filepath.Join(dir, "bundle-*.json"))
		if len(m) >= n {
			return m
		}
		if time.Now().After(deadline) {
			t.Fatalf("timed out waiting for %d bundle(s) in %s (have %d)", n, dir, len(m))
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestFlightRecRecordsAllRequests: with only the recorder enabled (no
// event log), every request — including failures — lands in the ring.
func TestFlightRecRecordsAllRequests(t *testing.T) {
	ts, _, rec := newFlightRecServer(t, nil)
	lt, _ := loggen.ByName("A")
	getJSON(t, ts.URL+"/v1/query?source=boxA&q="+escape(lt.Query), http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, nil)
	getJSON(t, ts.URL+"/v1/query?source=nope&q=ERROR", http.StatusNotFound, nil)

	st := rec.Status()
	if st.EventsRecorded != 3 {
		t.Fatalf("events recorded = %d, want 3 (status %+v)", st.EventsRecorded, st)
	}
	path, err := rec.TriggerDump("test")
	if err != nil {
		t.Fatal(err)
	}
	b, err := flightrec.LoadBundle(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(b.Events) != 3 {
		t.Fatalf("bundle has %d events, want 3", len(b.Events))
	}
	// Recorder-only mode still forces traced execution: span timings must
	// be present on the successful query's event.
	if len(b.Events[0].Spans) == 0 {
		t.Errorf("query event has no spans: %+v", b.Events[0])
	}
	if b.Events[2].Status != http.StatusNotFound {
		t.Errorf("failed request not captured: %+v", b.Events[2])
	}
	// The live-state hook captured the loaded sources.
	state, _ := json.Marshal(b.State)
	if !strings.Contains(string(state), `"boxA"`) {
		t.Errorf("bundle state missing source summary: %s", state)
	}
}

// TestFlightRecStatusEndpoint covers /debug/flightrec for both an enabled
// and a disabled recorder.
func TestFlightRecStatusEndpoint(t *testing.T) {
	ts, _, _ := newFlightRecServer(t, nil)
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, nil)
	var st flightrec.Status
	getJSON(t, ts.URL+"/debug/flightrec", http.StatusOK, &st)
	// The status request itself is not buffered yet when rendered, so
	// expect exactly the count request plus ring shape.
	if !st.Enabled || st.EventCapacity != 32 || st.EventsRecorded < 1 {
		t.Fatalf("status = %+v", st)
	}

	// Disabled server: enabled=false, not a 404.
	plain, _ := newTestServer(t)
	var off flightrec.Status
	getJSON(t, plain.URL+"/debug/flightrec", http.StatusOK, &off)
	if off.Enabled {
		t.Fatalf("disabled recorder reports enabled: %+v", off)
	}
}

// TestDebugDumpEndpoint: POST /debug/dump writes a loadable bundle; a
// second POST inside the cooldown answers 429; GET answers 405; a server
// without a recorder answers 503.
func TestDebugDumpEndpoint(t *testing.T) {
	ts, _, _ := newFlightRecServer(t, nil)
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, nil)

	resp, err := http.Post(ts.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	var out map[string]string
	json.NewDecoder(resp.Body).Decode(&out)
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK || out["bundle"] == "" {
		t.Fatalf("dump: status %d, body %v", resp.StatusCode, out)
	}
	b, err := flightrec.LoadBundle(out["bundle"])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger != "manual" || b.Manifest.EventCount < 1 {
		t.Fatalf("manifest = %+v", b.Manifest)
	}

	// Cooldown (1h in this fixture) suppresses the next manual dump.
	resp2, err := http.Post(ts.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp2.Body)
	resp2.Body.Close()
	if resp2.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("dump in cooldown: status %d, want 429", resp2.StatusCode)
	}

	getJSON(t, ts.URL+"/debug/dump", http.StatusMethodNotAllowed, nil)

	plain, _ := newTestServer(t)
	resp3, err := http.Post(plain.URL+"/debug/dump", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp3.Body)
	resp3.Body.Close()
	if resp3.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("dump without recorder: status %d, want 503", resp3.StatusCode)
	}
}

// TestPanicRecoveredAndDumped: a panicking handler is answered with a 500
// instead of a dropped connection, and the flight recorder writes a
// panic-triggered bundle carrying the stack. The panic is injected right
// at the instrument boundary — panics on engine worker goroutines are out
// of recover's reach by design.
func TestPanicRecoveredAndDumped(t *testing.T) {
	api, sv, rec := newFlightRecServer(t, nil)
	ts := httptest.NewServer(sv.instrument("query", func(w http.ResponseWriter, r *http.Request) {
		panic("injected read panic")
	}))
	t.Cleanup(ts.Close)

	resp, err := http.Get(ts.URL + "/v1/query?source=arc&q=ERROR")
	if err != nil {
		t.Fatalf("panic tore down the connection: %v", err)
	}
	var body map[string]string
	json.NewDecoder(resp.Body).Decode(&body)
	resp.Body.Close()
	if resp.StatusCode != http.StatusInternalServerError || body["error"] != "internal error" {
		t.Fatalf("panic response: status %d body %v", resp.StatusCode, body)
	}

	paths := waitForServerBundles(t, rec.Status().Dir, 1)
	b, err := flightrec.LoadBundle(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger != "panic" || len(b.Panics) != 1 {
		t.Fatalf("bundle = %+v", b.Manifest)
	}
	p := b.Panics[0]
	if p.Endpoint != "query" || !strings.Contains(p.Value, "injected read panic") || !strings.Contains(p.Stack, "goroutine") {
		t.Fatalf("panic info = %+v", p)
	}

	// The panics counter moved (it is process-global, so only monotonicity
	// is asserted).
	resp2, err := http.Get(api.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	metrics, _ := io.ReadAll(resp2.Body)
	resp2.Body.Close()
	if !strings.Contains(string(metrics), "loggrep_http_panics_total") {
		t.Error("/metrics missing loggrep_http_panics_total")
	}
}

// TestLatencyTriggerThroughServer: a request slower than the threshold
// produces a bundle without any explicit dump call.
func TestLatencyTriggerThroughServer(t *testing.T) {
	ts, _, rec := newFlightRecServer(t, func(c *flightrec.Config) {
		c.LatencyTrigger = time.Nanosecond // everything is "slow"
	})
	getJSON(t, ts.URL+"/v1/count?source=boxA&q=ERROR", http.StatusOK, nil)
	paths := waitForServerBundles(t, rec.Status().Dir, 1)
	b, err := flightrec.LoadBundle(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	if b.Manifest.Trigger != "latency" {
		t.Fatalf("trigger = %q, want latency", b.Manifest.Trigger)
	}
}

// TestSIGQUITBundleEndToEnd is the acceptance path: a SIGQUIT delivered to
// a loaded process produces exactly one bundle, and the diag renderer
// tells the incident story from it.
func TestSIGQUITBundleEndToEnd(t *testing.T) {
	ts, _, rec := newFlightRecServer(t, nil)
	lt, _ := loggen.ByName("A")
	for i := 0; i < 5; i++ {
		getJSON(t, ts.URL+"/v1/query?source=boxA&q="+escape(lt.Query), http.StatusOK, nil)
	}
	rec.Sample() // at least one metrics sample for the timeline

	ch := make(chan os.Signal, 1)
	signal.Notify(ch, syscall.SIGQUIT)
	defer signal.Stop(ch)
	done := make(chan struct{})
	go func() { rec.DumpOn(ch, "sigquit"); close(done) }()

	if err := syscall.Kill(os.Getpid(), syscall.SIGQUIT); err != nil {
		t.Fatal(err)
	}
	paths := waitForServerBundles(t, rec.Status().Dir, 1)
	signal.Stop(ch)
	close(ch)
	<-done

	if len(paths) != 1 {
		t.Fatalf("got %d bundles, want exactly 1: %v", len(paths), paths)
	}
	b, err := flightrec.LoadBundle(paths[0])
	if err != nil {
		t.Fatal(err)
	}
	story := b.Story()
	for _, want := range []string{"trigger=sigquit", "worst requests:", "boxA", "stage breakdown", "filter"} {
		if !strings.Contains(story, want) {
			t.Errorf("story missing %q:\n%s", want, story)
		}
	}
}

// TestRuntimeGaugesExported: the Go runtime gauges appear in the Prom
// text, the JSON view, and /healthz.
func TestRuntimeGaugesExported(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	text, _ := io.ReadAll(resp.Body)
	resp.Body.Close()
	for _, want := range []string{
		"# TYPE loggrep_goroutines gauge",
		"loggrep_heap_inuse_bytes",
		"loggrep_gc_pause_ns_total",
		"loggrep_process_uptime_seconds",
	} {
		if !strings.Contains(string(text), want) {
			t.Errorf("/metrics missing %q", want)
		}
	}

	var js map[string]any
	getJSON(t, ts.URL+"/metrics?format=json", http.StatusOK, &js)
	if g, ok := js["loggrep_goroutines"].(float64); !ok || g <= 0 {
		t.Errorf("JSON loggrep_goroutines = %v", js["loggrep_goroutines"])
	}
	if h, ok := js["loggrep_heap_inuse_bytes"].(float64); !ok || h <= 0 {
		t.Errorf("JSON loggrep_heap_inuse_bytes = %v", js["loggrep_heap_inuse_bytes"])
	}

	var hz map[string]any
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &hz)
	if g, ok := hz["goroutines"].(float64); !ok || g <= 0 {
		t.Errorf("/healthz goroutines = %v", hz["goroutines"])
	}
	if h, ok := hz["heap_inuse_bytes"].(float64); !ok || h <= 0 {
		t.Errorf("/healthz heap_inuse_bytes = %v", hz["heap_inuse_bytes"])
	}
}

// BenchmarkQueryFlightRec pairs with BenchmarkQueryBaseline: the same
// uncached query work with the flight recorder buffering every event (its
// sampler running, no trigger configured) — the "<2% overhead" claim for
// the always-on recorder in EXPERIMENTS.md.
func BenchmarkQueryFlightRec(b *testing.B) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(5, 3000)
	sv := New()
	rec := flightrec.NewRecorder(flightrec.Config{Dir: b.TempDir(), Registry: obsv.NewRegistry()})
	rec.Start()
	defer rec.Stop()
	sv.FlightRec = rec
	if err := sv.Load("boxA", core.Compress(block, core.DefaultOptions())); err != nil {
		b.Fatal(err)
	}
	h := sv.Handler()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r := httptest.NewRequest("GET", fmt.Sprintf("/v1/query?source=boxA&q=needle%dmissing", i), nil)
		w := httptest.NewRecorder()
		h.ServeHTTP(w, r)
		if w.Code != http.StatusOK {
			b.Fatalf("status %d", w.Code)
		}
	}
}
