package server

import (
	"encoding/json"
	"io"
	"net/http"
	"net/url"
	"strings"
	"testing"

	"loggrep/internal/obsv"
)

// TestMetricsEndpoint loads data, runs a query, then checks /metrics in
// both formats reports non-zero compression-stage and query metrics.
func TestMetricsEndpoint(t *testing.T) {
	ts, _ := newTestServer(t) // compresses two sources -> compression metrics
	var q queryResponse
	getJSON(t, ts.URL+"/v1/query?source=boxA&q="+url.QueryEscape("ERROR"), http.StatusOK, &q)
	if q.Matches == 0 {
		t.Fatal("query returned no matches; metrics check would be vacuous")
	}

	// Prometheus text format (the default).
	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if ct := resp.Header.Get("Content-Type"); !strings.HasPrefix(ct, "text/plain") {
		t.Errorf("content type = %q", ct)
	}
	body, _ := io.ReadAll(resp.Body)
	prom := string(body)
	for _, want := range []string{
		"# TYPE loggrep_queries_total counter",
		"# TYPE loggrep_compress_parse_ns summary",
		"loggrep_compress_parse_ns{quantile=\"0.5\"}",
		"loggrep_query_ns_count",
	} {
		if !strings.Contains(prom, want) {
			t.Errorf("prometheus output missing %q", want)
		}
	}
	// The query endpoint's request counter must exist and be non-zero
	// (exact value depends on how many tests ran before this one).
	reqLine := ""
	for _, line := range strings.Split(prom, "\n") {
		if strings.HasPrefix(line, `loggrep_http_requests_total{endpoint="query"}`) {
			reqLine = line
		}
	}
	if reqLine == "" || strings.HasSuffix(reqLine, " 0") {
		t.Errorf("per-endpoint request counter missing or zero: %q", reqLine)
	}

	// JSON format.
	resp2, err := http.Get(ts.URL + "/metrics?format=json")
	if err != nil {
		t.Fatal(err)
	}
	defer resp2.Body.Close()
	var m map[string]json.RawMessage
	if err := json.NewDecoder(resp2.Body).Decode(&m); err != nil {
		t.Fatalf("decode json metrics: %v", err)
	}
	var queries int64
	if err := json.Unmarshal(m["loggrep_queries_total"], &queries); err != nil || queries == 0 {
		t.Errorf("loggrep_queries_total = %s, err %v; want > 0", m["loggrep_queries_total"], err)
	}
	var parse obsv.HistogramSnapshot
	if err := json.Unmarshal(m["loggrep_compress_parse_ns"], &parse); err != nil || parse.Count == 0 || parse.Sum == 0 {
		t.Errorf("loggrep_compress_parse_ns = %+v, err %v; want non-zero count and sum", parse, err)
	}
}

// TestQueryTraceParam checks &trace=1 returns a span breakdown and that
// untraced responses omit it.
func TestQueryTraceParam(t *testing.T) {
	ts, _ := newTestServer(t)
	var plain queryResponse
	getJSON(t, ts.URL+"/v1/query?source=boxA&q=ERROR", http.StatusOK, &plain)
	if plain.Trace != nil {
		t.Errorf("untraced response has trace: %+v", plain.Trace)
	}
	// Query a keyword the cache has not seen so the trace carries spans
	// (a Query Cache hit legitimately produces a span-free trace).
	for _, src := range []string{"boxA", "arcA"} {
		var traced queryResponse
		getJSON(t, ts.URL+"/v1/query?source="+src+"&q=INFO&trace=1", http.StatusOK, &traced)
		if traced.Trace == nil {
			t.Fatalf("%s: trace=1 response lacks trace", src)
		}
		if traced.Trace.DurNS <= 0 || len(traced.Trace.Spans) == 0 {
			t.Errorf("%s: trace = %+v, want spans and a duration", src, traced.Trace)
		}
		if traced.Matches == 0 {
			t.Errorf("%s: traced query returned no matches", src)
		}
	}
}

// TestPprofOptIn checks pprof endpoints are absent by default and mounted
// with Server.Pprof set.
func TestPprofOptIn(t *testing.T) {
	ts, _ := newTestServer(t)
	resp, err := http.Get(ts.URL + "/debug/pprof/")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("pprof without opt-in: status %d, want 404", resp.StatusCode)
	}
}
