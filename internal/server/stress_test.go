package server

import (
	"context"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"os"
	"os/signal"
	"runtime"
	"sync"
	"sync/atomic"
	"syscall"
	"testing"
	"time"

	"loggrep/internal/archive"
	"loggrep/internal/faultinject"
	"loggrep/internal/loggen"
)

// newStressServer builds a Server with one fresh (never-queried) archive
// source named "arc", so a read hook installed on it fires on the first
// query of every block.
func newStressServer(t *testing.T) *Server {
	t.Helper()
	lt, _ := loggen.ByName("A")
	block := lt.Block(11, 2500)
	aopts := archive.DefaultOptions()
	aopts.BlockBytes = 25_000
	data, err := archive.Compress(block, aopts)
	if err != nil {
		t.Fatal(err)
	}
	sv := New()
	if err := sv.Load("arc", data); err != nil {
		t.Fatal(err)
	}
	return sv
}

// waitGoroutinesSettle polls until the goroutine count drops back to
// roughly its starting value; lingering goroutines mean a query path
// leaked one past its response.
func waitGoroutinesSettle(t *testing.T, before int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		now := runtime.NumGoroutine()
		if now <= before+3 {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 1<<16)
			n := runtime.Stack(buf, true)
			t.Fatalf("goroutines did not settle: %d before, %d after\n%s", before, now, buf[:n])
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// TestAdmissionControlStress saturates a MaxConcurrent=2 server with 32
// concurrent queries against a source whose reads are gated shut, so
// exactly 2 execute, 4 wait in the queue, and the other 26 are shed with
// 429 + Retry-After. Opening the gate lets the 6 admitted queries finish
// with 200. Every request gets exactly one response, each either 200 or
// 429, and no goroutine outlives its request.
func TestAdmissionControlStress(t *testing.T) {
	gBefore := runtime.NumGoroutine()
	sv := newStressServer(t)
	sv.MaxConcurrent = 2 // queue depth defaults to 2x = 4
	sv.QueryTimeout = 0  // gated queries must block, not time out

	// Gate every block read: admitted queries park inside the handler
	// holding their semaphore slot until the gate opens.
	gate := make(chan struct{})
	sv.sources["arc"].arch.SetReadHook(func(ctx context.Context) error {
		select {
		case <-gate:
			return nil
		case <-ctx.Done():
			return ctx.Err()
		}
	})

	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const n = 32
	codes := make(chan int, n)
	for i := 0; i < n; i++ {
		go func() {
			resp, err := http.Get(ts.URL + "/v1/query?source=arc&q=ERROR")
			if err != nil {
				codes <- -1
				return
			}
			defer resp.Body.Close()
			if resp.StatusCode == http.StatusTooManyRequests && resp.Header.Get("Retry-After") == "" {
				codes <- -2
				return
			}
			codes <- resp.StatusCode
		}()
	}

	// While the gate is shut no slot ever frees, so every request beyond
	// the 2+4 admitted ones is shed immediately: the first 26 responses
	// must all be 429s. Collecting them before opening the gate makes the
	// split deterministic even if some client goroutines start late.
	count := map[int]int{}
	for i := 0; i < n-6; i++ {
		code := <-codes
		if code != http.StatusTooManyRequests {
			t.Fatalf("response %d while gate shut: got %d, want 429", i, code)
		}
		count[code]++
	}
	close(gate)
	for i := 0; i < 6; i++ {
		code := <-codes
		if code != http.StatusOK {
			t.Fatalf("admitted request got %d, want 200", code)
		}
		count[code]++
	}
	if count[http.StatusOK] != 6 || count[http.StatusTooManyRequests] != 26 {
		t.Fatalf("response split = %v, want 6x200 + 26x429", count)
	}

	ts.Client().CloseIdleConnections()
	ts.Close()
	waitGoroutinesSettle(t, gBefore)
}

// TestStalledQueryTimesOutOverHTTP: with every block read stalled far
// beyond the deadline, a request carrying ?timeout_ms= gets its 504
// within ~2x that deadline — the end-to-end form of the tentpole
// acceptance criterion.
func TestStalledQueryTimesOutOverHTTP(t *testing.T) {
	sv := newStressServer(t)
	sv.QueryTimeout = 0
	sv.sources["arc"].arch.SetReadHook(faultinject.SlowRead(30 * time.Second))
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	const deadline = 400 * time.Millisecond
	start := time.Now()
	resp, err := http.Get(fmt.Sprintf("%s/v1/query?source=arc&q=ERROR&timeout_ms=%d", ts.URL, deadline.Milliseconds()))
	elapsed := time.Since(start)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusGatewayTimeout {
		t.Fatalf("stalled query returned %d, want 504", resp.StatusCode)
	}
	if elapsed > 2*deadline {
		t.Fatalf("stalled query answered after %v, want <= %v (2x deadline)", elapsed, 2*deadline)
	}

	// A bad timeout_ms is rejected before any work.
	resp, err = http.Get(ts.URL + "/v1/query?source=arc&q=ERROR&timeout_ms=banana")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("timeout_ms=banana returned %d, want 400", resp.StatusCode)
	}
}

// TestGracefulShutdownSIGTERM drives the same path loggrepd uses: a real
// listener, signal.Notify, and a real SIGTERM — delivered while stalled
// queries are in flight. ServeGraceful must cancel them and return nil
// (loggrepd's exit 0) within the grace period, and every client must see
// one of 200, 429, 503, or a connection error from the dying server.
func TestGracefulShutdownSIGTERM(t *testing.T) {
	sv := newStressServer(t)
	sv.QueryTimeout = 0 // keep 504 out of the contract; shutdown must do the cancelling

	// Stalls honor ctx, so HardStop's cancellation unwinds them; count
	// arrivals so the signal lands only once queries are truly in flight.
	var arrived atomic.Int32
	sv.sources["arc"].arch.SetReadHook(func(ctx context.Context) error {
		arrived.Add(1)
		return faultinject.Stall(ctx, 30*time.Second)
	})

	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	sig := make(chan os.Signal, 1)
	signal.Notify(sig, syscall.SIGTERM)
	defer signal.Stop(sig)

	const grace = 3 * time.Second
	served := make(chan error, 1)
	go func() { served <- sv.ServeGraceful(ln, sig, grace) }()

	base := "http://" + ln.Addr().String()
	var wg sync.WaitGroup
	codes := make(chan int, 8)
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			resp, err := http.Get(base + "/v1/query?source=arc&q=ERROR")
			if err != nil {
				codes <- -1 // connection torn down mid-shutdown: acceptable
				return
			}
			defer resp.Body.Close()
			codes <- resp.StatusCode
		}()
	}
	for arrived.Load() == 0 {
		time.Sleep(5 * time.Millisecond)
	}

	start := time.Now()
	if err := syscall.Kill(os.Getpid(), syscall.SIGTERM); err != nil {
		t.Fatal(err)
	}
	select {
	case err := <-served:
		if err != nil {
			t.Fatalf("ServeGraceful returned %v, want nil (clean drain)", err)
		}
	case <-time.After(grace + 2*time.Second):
		t.Fatal("ServeGraceful did not return within the grace period")
	}
	if elapsed := time.Since(start); elapsed > grace {
		t.Fatalf("shutdown took %v, want <= %v", elapsed, grace)
	}

	wg.Wait()
	close(codes)
	for code := range codes {
		switch code {
		case http.StatusOK, http.StatusTooManyRequests, http.StatusServiceUnavailable, -1:
		default:
			t.Fatalf("response during shutdown: %d, want 200/429/503 or a connection error", code)
		}
	}

	// Draining is latched: a request after shutdown is refused outright.
	sv2 := New()
	sv2.StartDraining()
	rec := httptest.NewRecorder()
	sv2.Handler().ServeHTTP(rec, httptest.NewRequest("GET", "/v1/query?source=x&q=a", nil))
	if rec.Code != http.StatusServiceUnavailable {
		t.Fatalf("query on draining server returned %d, want 503", rec.Code)
	}
}
