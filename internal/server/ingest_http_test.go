package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"loggrep/internal/ingest"
)

func newIngestServer(t *testing.T) (*httptest.Server, *Server) {
	t.Helper()
	m, _, err := ingest.Open(ingest.Config{
		Dir:            t.TempDir(),
		SealBytes:      1 << 30,
		SealAge:        time.Hour,
		MaxTenantBytes: 1 << 20,
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { m.Close() })
	sv := New()
	sv.Ingest = m
	ts := httptest.NewServer(sv.Handler())
	t.Cleanup(ts.Close)
	return ts, sv
}

func postIngest(t *testing.T, url, contentType, body string, wantCode int) ingestResponse {
	t.Helper()
	resp, err := http.Post(url, contentType, strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantCode {
		t.Fatalf("POST %s: status %d, want %d", url, resp.StatusCode, wantCode)
	}
	var out ingestResponse
	decodeBody(t, resp, &out)
	return out
}

func decodeBody(t *testing.T, resp *http.Response, v any) {
	t.Helper()
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("decode: %v", err)
	}
}

func TestIngestPlainThenQuery(t *testing.T) {
	ts, _ := newIngestServer(t)
	out := postIngest(t, ts.URL+"/ingest?tenant=acme&stream=app", "text/plain",
		"first ERROR line\nsecond ok line\nthird ERROR line\n", http.StatusOK)
	if out.Accepted != 3 || out.Streams["acme/app"] != 3 {
		t.Fatalf("ingest response = %+v", out)
	}
	var q queryResponse
	getJSON(t, ts.URL+"/v1/query?source=acme/app&q=ERROR", http.StatusOK, &q)
	if q.Matches != 2 || q.Lines[0] != 0 || q.Lines[1] != 2 {
		t.Fatalf("query over ingest stream = %+v", q)
	}
	if q.Entries[1] != "third ERROR line" {
		t.Fatalf("entry = %q", q.Entries[1])
	}
	var count struct {
		Matches int `json:"matches"`
	}
	getJSON(t, ts.URL+"/v1/count?source=acme/app&q=ERROR", http.StatusOK, &count)
	if count.Matches != 2 {
		t.Fatalf("count = %d", count.Matches)
	}
	var entry struct {
		Entry string `json:"entry"`
	}
	getJSON(t, ts.URL+"/v1/entry?source=acme/app&line=1", http.StatusOK, &entry)
	if entry.Entry != "second ok line" {
		t.Fatalf("entry endpoint = %q", entry.Entry)
	}
}

func TestIngestDefaultTenantStream(t *testing.T) {
	ts, _ := newIngestServer(t)
	postIngest(t, ts.URL+"/ingest", "text/plain", "hello default\n", http.StatusOK)
	var q queryResponse
	// A bare stream name resolves via the "default" tenant.
	getJSON(t, ts.URL+"/v1/query?source=default&q=hello", http.StatusOK, &q)
	if q.Matches != 1 {
		t.Fatalf("query = %+v", q)
	}
}

func TestIngestNDJSONRouting(t *testing.T) {
	ts, _ := newIngestServer(t)
	body := `{"line":"to the default stream"}
{"line":"to another stream","stream":"audit"}
{"line":"default again"}`
	out := postIngest(t, ts.URL+"/ingest?tenant=acme&stream=app", "application/x-ndjson", body, http.StatusOK)
	if out.Accepted != 3 || out.Streams["acme/app"] != 2 || out.Streams["acme/audit"] != 1 {
		t.Fatalf("ndjson response = %+v", out)
	}
	var q queryResponse
	getJSON(t, ts.URL+"/v1/query?source=acme/audit&q=another", http.StatusOK, &q)
	if q.Matches != 1 {
		t.Fatalf("routed stream query = %+v", q)
	}
}

func TestIngestBadRequests(t *testing.T) {
	ts, _ := newIngestServer(t)
	// Malformed NDJSON.
	postIngest(t, ts.URL+"/ingest", "application/x-ndjson", "not json at all", http.StatusBadRequest)
	// NDJSON without the required field.
	postIngest(t, ts.URL+"/ingest", "application/x-ndjson", `{"msg":"x"}`, http.StatusBadRequest)
	// Invalid stream name.
	postIngest(t, ts.URL+"/ingest?stream=../evil", "text/plain", "x\n", http.StatusBadRequest)
	// GET is not allowed.
	resp, err := http.Get(ts.URL + "/ingest")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusMethodNotAllowed {
		t.Fatalf("GET /ingest: %d", resp.StatusCode)
	}
}

func TestIngestDisabled(t *testing.T) {
	sv := New()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("x\n"))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("ingest disabled: status %d, want 404", resp.StatusCode)
	}
}

func TestIngestBackpressure429(t *testing.T) {
	ts, _ := newIngestServer(t) // 1 MB tenant budget
	big := strings.Repeat(strings.Repeat("x", 1023)+"\n", 700)
	postIngest(t, ts.URL+"/ingest?tenant=small&stream=app", "text/plain", big, http.StatusOK)
	resp, err := http.Post(ts.URL+"/ingest?tenant=small&stream=app", "text/plain", strings.NewReader(big))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusTooManyRequests {
		t.Fatalf("over-budget ingest: status %d, want 429", resp.StatusCode)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("429 without Retry-After")
	}
	var out ingestResponse
	decodeBody(t, resp, &out)
	if out.Accepted != 0 || out.Error == "" {
		t.Fatalf("429 body = %+v", out)
	}
	// Other tenants remain unaffected by the full one.
	postIngest(t, ts.URL+"/ingest?tenant=other&stream=app", "text/plain", "fine\n", http.StatusOK)
}

func TestIngestDraining503(t *testing.T) {
	ts, sv := newIngestServer(t)
	sv.StartDraining()
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", strings.NewReader("x\n"))
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("draining ingest: status %d, want 503", resp.StatusCode)
	}
}

func TestIngestTooLarge413(t *testing.T) {
	old := MaxIngestBytes
	MaxIngestBytes = 1 << 16
	defer func() { MaxIngestBytes = old }()
	ts, _ := newIngestServer(t)
	// A body one byte over the cap.
	body := strings.NewReader(strings.Repeat("x", MaxIngestBytes) + "\n")
	resp, err := http.Post(ts.URL+"/ingest", "text/plain", body)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusRequestEntityTooLarge {
		t.Fatalf("oversized ingest: status %d, want 413", resp.StatusCode)
	}
}

func TestIngestSealEndpointAndSources(t *testing.T) {
	ts, sv := newIngestServer(t)
	postIngest(t, ts.URL+"/ingest?tenant=acme&stream=app", "text/plain",
		"sealed one\nsealed two\n", http.StatusOK)
	resp, err := http.Post(ts.URL+"/ingest/seal?tenant=acme&stream=app", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("seal: status %d", resp.StatusCode)
	}
	// Sealing an unknown stream 404s.
	resp, err = http.Post(ts.URL+"/ingest/seal?tenant=acme&stream=nope", "", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Fatalf("seal unknown: status %d", resp.StatusCode)
	}
	// The sealed stream still answers, and /v1/sources reports it as an
	// ingest source with a sealed segment.
	var q queryResponse
	getJSON(t, ts.URL+"/v1/query?source=acme/app&q=sealed", http.StatusOK, &q)
	if q.Matches != 2 {
		t.Fatalf("query after seal = %+v", q)
	}
	var srcs []SourceInfo
	getJSON(t, ts.URL+"/v1/sources", http.StatusOK, &srcs)
	if len(srcs) != 1 || srcs[0].Name != "acme/app" || srcs[0].Kind != "ingest" ||
		srcs[0].Lines != 2 || srcs[0].Blocks != 1 {
		t.Fatalf("sources = %+v", srcs)
	}
	if got := sv.Ingest.Snapshot()[0]; got.SealedSegs != 1 || got.RawSegs != 0 {
		t.Fatalf("snapshot = %+v", got)
	}
	// Post-seal appends start a fresh raw tail; queries span both.
	postIngest(t, ts.URL+"/ingest?tenant=acme&stream=app", "text/plain", "sealed three\n", http.StatusOK)
	getJSON(t, ts.URL+"/v1/query?source=acme/app&q=sealed", http.StatusOK, &q)
	if q.Matches != 3 || q.Lines[2] != 2 {
		t.Fatalf("query post-seal append = %+v", q)
	}
}

func TestIngestHealthz(t *testing.T) {
	ts, _ := newIngestServer(t)
	postIngest(t, ts.URL+"/ingest", "text/plain", "x\n", http.StatusOK)
	var out map[string]any
	getJSON(t, ts.URL+"/healthz", http.StatusOK, &out)
	if n, ok := out["ingest_streams"].(float64); !ok || n != 1 {
		t.Fatalf("healthz ingest_streams = %v", out["ingest_streams"])
	}
}
