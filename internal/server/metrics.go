package server

import (
	"fmt"
	"net/http"
	"runtime"
	"runtime/debug"
	"sync"
	"time"

	"loggrep/internal/obsv"
	"loggrep/internal/otlp"
)

// Admission-control and lifecycle metrics, registered in obsv.Default.
// Every name here is documented in OPERATIONS.md; keep the two in sync.
var (
	mQueriesShed = obsv.Default.Counter("loggrep_http_queries_shed_total",
		"Query requests refused with 429 because the wait queue was full")
	mQueriesQueued = obsv.Default.Counter("loggrep_http_queries_queued_total",
		"Query requests that waited in the admission queue")
	mQueriesTimedOut = obsv.Default.Counter("loggrep_http_queries_timed_out_total",
		"Query requests answered 504 after their deadline expired")
	mQueriesHTTPCancelled = obsv.Default.Counter("loggrep_http_queries_cancelled_total",
		"Query requests abandoned by the client or cut off by shutdown")
	mQueriesRejectedDraining = obsv.Default.Counter("loggrep_http_rejected_draining_total",
		"Requests refused with 503 while the server was draining")
	mShutdowns = obsv.Default.Counter("loggrep_shutdowns_total",
		"Graceful shutdowns initiated by signal")
	mPanics = obsv.Default.Counter("loggrep_http_panics_total",
		"Handler panics recovered by instrument (each also triggers a flight-recorder dump)")
)

// processStart anchors the uptime gauge. Package-level rather than
// per-Server because obsv.Default is process-global and gauges register
// first-wins.
var processStart = time.Now()

var runtimeGaugesOnce sync.Once

// registerRuntimeGauges installs the Go runtime gauges in obsv.Default so
// they show up in both the Prometheus text and JSON views of /metrics.
// They read live values at scrape time via callbacks; ReadMemStats on a
// scrape path is cheap enough at /metrics cadence. Every name here is
// documented in OPERATIONS.md; keep the two in sync.
func registerRuntimeGauges() {
	runtimeGaugesOnce.Do(func() {
		obsv.Default.Gauge("loggrep_goroutines",
			"Live goroutine count", func() int64 {
				return int64(runtime.NumGoroutine())
			})
		obsv.Default.Gauge("loggrep_heap_inuse_bytes",
			"Bytes in in-use heap spans", func() int64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return int64(ms.HeapInuse)
			})
		obsv.Default.Gauge("loggrep_gc_pause_ns_total",
			"Cumulative GC stop-the-world pause time", func() int64 {
				var ms runtime.MemStats
				runtime.ReadMemStats(&ms)
				return int64(ms.PauseTotalNs)
			})
		obsv.Default.Gauge("loggrep_process_uptime_seconds",
			"Seconds since process start", func() int64 {
				return int64(time.Since(processStart).Seconds())
			})
	})
}

// requestIDs resolves a request's W3C trace identity: a valid inbound
// traceparent header joins the caller's trace (the caller's span becomes
// our parent and its tracestate is carried through); anything else roots
// a fresh 128-bit trace here. Either way this process opens its own span.
func requestIDs(r *http.Request) obsv.ReqIDs {
	ids := obsv.ReqIDs{SpanID: obsv.NewSpanID()}
	if tc, ok := otlp.ParseTraceparent(r.Header.Get("traceparent")); ok {
		ids.TraceID = tc.TraceID
		ids.ParentSpanID = tc.SpanID
		if ts := r.Header.Get("tracestate"); otlp.ValidTracestate(ts) {
			ids.TraceState = ts
		}
	} else {
		ids.TraceID = obsv.NewTraceID128()
	}
	return ids
}

// instrument wraps a handler with a per-endpoint request counter and latency
// histogram, registered in obsv.Default as
// loggrep_http_requests_total{endpoint="..."} and
// loggrep_http_request_ns{endpoint="..."}. Every endpoint label is
// documented in OPERATIONS.md; keep the two in sync.
//
// It is also the W3C trace-context boundary: an inbound traceparent
// header is parsed and joined (the caller's 128-bit trace id becomes this
// request's; the caller's span id its parent), a request without one
// roots a fresh trace, and the response echoes `traceparent` with the
// span this process opened plus the compatible X-Trace-Id header. The
// identity rides the request context for wide events and ingest/blob
// exemplars, and the trace id is attached to the latency observation as
// the histogram bucket's exemplar — so a slow observation on /metrics can
// be joined back to its wide event and its exported OTLP span.
//
// Finally it is the server's panic boundary: a panicking handler is
// recovered, counted, handed (with its stack) to the flight recorder —
// which triggers a diagnostic bundle — and answered with a 500 instead of
// tearing down the connection.
func (sv *Server) instrument(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	reqs := obsv.Default.Counter(
		fmt.Sprintf(`loggrep_http_requests_total{endpoint=%q}`, endpoint),
		"HTTP requests served, by endpoint")
	lat := obsv.Default.Histogram(
		fmt.Sprintf(`loggrep_http_request_ns{endpoint=%q}`, endpoint), "ns",
		"HTTP request latency, by endpoint")
	return func(w http.ResponseWriter, r *http.Request) {
		ids := requestIDs(r)
		w.Header().Set("X-Trace-Id", ids.TraceID)
		w.Header().Set("traceparent", otlp.FormatTraceparent(ids.TraceID, ids.SpanID, true))
		r = r.WithContext(obsv.ContextWithIDs(r.Context(), ids))
		t0 := time.Now()
		defer func() {
			if v := recover(); v != nil {
				mPanics.Inc()
				sv.FlightRec.RecordPanic(endpoint, v, debug.Stack())
				httpError(w, http.StatusInternalServerError, "internal error")
			}
			reqs.Inc()
			lat.ObserveExemplar(time.Since(t0).Nanoseconds(), ids.TraceID)
		}()
		fn(w, r)
	}
}

// handleMetrics serves obsv.Default: Prometheus text exposition by default,
// one JSON object with ?format=json.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		obsv.Default.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obsv.Default.WriteProm(w)
}
