package server

import (
	"fmt"
	"net/http"
	"time"

	"loggrep/internal/obsv"
)

// instrument wraps a handler with a per-endpoint request counter and latency
// histogram, registered in obsv.Default as
// loggrep_http_requests_total{endpoint="..."} and
// loggrep_http_request_ns{endpoint="..."}. Every endpoint label is
// documented in OPERATIONS.md; keep the two in sync.
func instrument(endpoint string, fn http.HandlerFunc) http.HandlerFunc {
	reqs := obsv.Default.Counter(
		fmt.Sprintf(`loggrep_http_requests_total{endpoint=%q}`, endpoint),
		"HTTP requests served, by endpoint")
	lat := obsv.Default.Histogram(
		fmt.Sprintf(`loggrep_http_request_ns{endpoint=%q}`, endpoint), "ns",
		"HTTP request latency, by endpoint")
	return func(w http.ResponseWriter, r *http.Request) {
		t0 := time.Now()
		fn(w, r)
		reqs.Inc()
		lat.Observe(time.Since(t0).Nanoseconds())
	}
}

// handleMetrics serves obsv.Default: Prometheus text exposition by default,
// one JSON object with ?format=json.
func handleMetrics(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if r.URL.Query().Get("format") == "json" {
		w.Header().Set("Content-Type", "application/json")
		obsv.Default.WriteJSON(w)
		return
	}
	w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
	obsv.Default.WriteProm(w)
}
