package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loggrep/internal/archive"
	"loggrep/internal/blobstore"
	"loggrep/internal/core"
	"loggrep/internal/flightrec"
	"loggrep/internal/ingest"
	"loggrep/internal/liveops"
	"loggrep/internal/obsv"
	"loggrep/internal/otlp"
	"loggrep/internal/version"
)

// MaxUploadBytes bounds PUT bodies.
const MaxUploadBytes = 1 << 30

// MaxIngestBytes bounds one POST /ingest batch body. Far above the
// useful batch size (a few MB amortizes the WAL fsync); far below
// anything that could blow up resident memory. A variable only so tests
// can shrink it.
var MaxIngestBytes = 64 << 20

// source is one loaded compressed dataset. Store and Archive synchronize
// internally, so sources need no lock of their own and queries against
// one source proceed concurrently (cache hits and distinct archive blocks
// in parallel; same-block work serialized by the store).
type source struct {
	box   *core.Store
	arch  *archive.Archive
	bytes int
}

func (s *source) numLines() int {
	if s.arch != nil {
		return s.arch.NumLines()
	}
	return s.box.NumLines()
}

// querier is what the query/count/entry handlers need from a resolved
// source; implemented by loaded boxes/archives (source) and by live
// ingest streams (ingestSource).
type querier interface {
	query(ctx context.Context, cmd string, traced bool, budget core.Budget) (*queryResult, error)
	count(ctx context.Context, cmd string) (matches, damaged int, err error)
	entry(line int) (string, error)
}

// queryResult is the normalized outcome of a query against either kind of
// source.
type queryResult struct {
	lines         []int
	entries       []string
	damaged       []archive.BlockError
	partial       bool
	partialReason string
	trace         *obsv.Trace
}

func (s *source) query(ctx context.Context, cmd string, traced bool, budget core.Budget) (*queryResult, error) {
	if s.arch != nil {
		var (
			res *archive.Result
			tr  *obsv.Trace
			err error
		)
		if traced {
			res, tr, err = s.arch.QueryTracedContext(ctx, cmd, 0, budget)
		} else {
			res, err = s.arch.QueryContext(ctx, cmd, 0, budget)
		}
		if err != nil {
			return nil, err
		}
		return &queryResult{lines: res.Lines, entries: res.Entries, damaged: res.Damaged,
			partial: res.Partial, partialReason: res.PartialReason, trace: tr}, nil
	}
	var (
		res *core.Result
		tr  *obsv.Trace
		err error
	)
	bs := core.NewBudgetState(budget)
	if traced {
		res, tr, err = s.box.QueryTracedContext(ctx, cmd, bs)
	} else {
		res, err = s.box.QueryContext(ctx, cmd, bs)
	}
	if err != nil {
		return nil, err
	}
	return &queryResult{lines: res.Lines, entries: res.Entries,
		partial: res.Partial, partialReason: res.PartialReason, trace: tr}, nil
}

func (s *source) count(ctx context.Context, cmd string) (matches, damaged int, err error) {
	if s.arch != nil {
		res, err := s.arch.QueryContext(ctx, cmd, 0, core.Budget{})
		if err != nil {
			return 0, 0, err
		}
		return len(res.Lines), len(res.Damaged), nil
	}
	matches, err = s.box.CountContext(ctx, cmd)
	return matches, 0, err
}

func (s *source) entry(line int) (string, error) {
	if s.arch != nil {
		return s.arch.Entry(line)
	}
	return s.box.ReconstructLine(line)
}

// Server is the HTTP handler set.
type Server struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ when set before
	// Handler is called. Off by default: the profiling endpoints expose
	// internals and should be opt-in (loggrepd -pprof).
	Pprof bool

	// MaxConcurrent caps the queries (and counts) executing at once; 0
	// means unlimited. Excess requests wait in a short queue and are shed
	// with 429 + Retry-After once it is full.
	MaxConcurrent int
	// QueueDepth sizes the wait queue in front of the semaphore. 0 picks
	// the default of 2×MaxConcurrent. Ignored when MaxConcurrent is 0.
	QueueDepth int
	// QueryTimeout is the default per-request deadline; 0 means none. A
	// request may override it with ?timeout_ms=, clamped to MaxTimeout.
	QueryTimeout time.Duration
	// MaxTimeout clamps per-request ?timeout_ms= overrides (and, when
	// set, the default too). 0 means no clamp.
	MaxTimeout time.Duration
	// Budget caps the work of each query; zero fields mean unlimited.
	// Queries that exhaust it return partial results, never errors.
	Budget core.Budget
	// DisableIndex makes archive sources ignore their block-skipping
	// index sections and always full-scan (loggrepd -no-index). Set
	// before Load; it applies to every source loaded afterwards.
	DisableIndex bool
	// Events, when set, receives one wide observability event per query
	// and count request (loggrepd wires -slowlog here). Setting it forces
	// traced query execution so the events carry per-stage span timings.
	Events *obsv.EventLog
	// FlightRec, when set, buffers every request's wide event in the
	// flight recorder's ring and evaluates its dump triggers. Like
	// Events, setting it forces traced query execution. All recorder
	// methods are nil-safe, so handlers call through unconditionally.
	FlightRec *flightrec.Recorder
	// OTLP, when set, exports one OTLP span tree per finished request —
	// the request as a root SERVER span joining the caller's W3C trace,
	// per-stage query spans as children — through the dependency-free
	// export pipeline (loggrepd -otlp-endpoint). Like Events, setting it
	// forces traced query execution so exported spans carry stage
	// timings. All exporter methods are nil-safe and never block.
	OTLP *otlp.Exporter
	// Liveops, when set, is the live operations plane: every
	// query/count/ingest request registers in the in-flight registry
	// (GET /v1/inflight, DELETE /v1/inflight/{id}), its engine work is
	// attributed to its tenant in the usage meter (GET /v1/usage), and
	// its outcome feeds the SLO burn-rate engine (GET /v1/slo). Like
	// Events, setting it forces traced query execution so the meter sees
	// engine-work fields. All plane methods are nil-safe.
	Liveops *liveops.Plane
	// Ingest, when set, enables the write path: POST /ingest appends
	// batches into per-tenant/stream WAL buffers and POST /ingest/seal
	// forces a stream's raw tail into sealed archive segments. Ingest
	// streams are queryable through /v1/query et al. under the source
	// name "tenant/stream" (loggrepd -ingest).
	Ingest *ingest.Manager
	// Blobs serves LoadFromStore reads. Nil uses a fault-policy store
	// over the local filesystem with keys as plain paths (what loggrepd
	// -load wants); set it to point startup loads at another backend or
	// policy.
	Blobs blobstore.BlobStore

	mu      sync.RWMutex
	sources map[string]*source
	start   time.Time

	admitOnce sync.Once
	sem       chan struct{} // execution slots (nil = unlimited)
	queue     chan struct{} // wait-queue slots

	// lifecycle: draining stops admission (503); stopCtx cancels every
	// in-flight request context on hard stop.
	lifeMu     sync.Mutex
	draining   bool
	stopCtx    context.Context
	stopCancel context.CancelFunc
}

// New returns an empty server.
func New() *Server {
	stopCtx, stopCancel := context.WithCancel(context.Background())
	return &Server{
		sources: make(map[string]*source), start: time.Now(),
		stopCtx: stopCtx, stopCancel: stopCancel,
	}
}

// Load registers compressed data under a name (box or archive,
// auto-detected).
func (sv *Server) Load(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("server: empty source name")
	}
	src := &source{bytes: len(data)}
	if archive.IsArchive(data) {
		a, err := archive.Open(data)
		if err != nil {
			return err
		}
		if sv.DisableIndex {
			a.SetIndexEnabled(false)
		}
		src.arch = a
	} else {
		st, err := core.Open(data, core.QueryOptions{})
		if err != nil {
			return err
		}
		src.box = st
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.sources[name] = src
	return nil
}

// defaultBlobs lazily builds the fallback LoadFromStore backend: the
// local filesystem behind the default fault policy, keys as plain paths.
var defaultBlobs = sync.OnceValue(func() blobstore.BlobStore {
	return blobstore.Wrap(blobstore.NewLocal(""), blobstore.Policy{Name: "server"})
})

// LoadFromStore fetches key through the server's blob store (retries,
// breaker, the works) and registers it under name. Startup loads go
// through here so a flaky disk or remote backend gets the same fault
// handling as query-time reads.
func (sv *Server) LoadFromStore(ctx context.Context, name, key string) error {
	b := sv.Blobs
	if b == nil {
		b = defaultBlobs()
	}
	data, err := b.Get(ctx, key)
	if err != nil {
		return err
	}
	return sv.Load(name, data)
}

// Handler returns the routed http.Handler. Every endpoint is wrapped with
// per-endpoint request/latency metrics (see instrument).
func (sv *Server) Handler() http.Handler {
	sv.initAdmission()
	registerRuntimeGauges()
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", sv.instrument("healthz", sv.handleHealthz))
	mux.HandleFunc("/metrics", sv.instrument("metrics", handleMetrics))
	mux.HandleFunc("/v1/sources", sv.instrument("sources", sv.handleSources))
	mux.HandleFunc("/v1/sources/", sv.instrument("source", sv.handleSource))
	mux.HandleFunc("/v1/query", sv.instrument("query", sv.handleQuery))
	mux.HandleFunc("/v1/count", sv.instrument("count", sv.handleCount))
	mux.HandleFunc("/v1/entry", sv.instrument("entry", sv.handleEntry))
	mux.HandleFunc("/v1/inflight", sv.instrument("inflight", sv.handleInflight))
	mux.HandleFunc("/v1/inflight/", sv.instrument("inflight_cancel", sv.handleInflightID))
	mux.HandleFunc("/v1/usage", sv.instrument("usage", sv.handleUsage))
	mux.HandleFunc("/v1/slo", sv.instrument("slo", sv.handleSLO))
	mux.HandleFunc("/ingest", sv.instrument("ingest", sv.handleIngest))
	mux.HandleFunc("/ingest/seal", sv.instrument("ingest_seal", sv.handleIngestSeal))
	mux.HandleFunc("/debug/flightrec", sv.instrument("flightrec", sv.handleFlightRec))
	mux.HandleFunc("/debug/dump", sv.instrument("dump", sv.handleDump))
	if sv.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sv.mu.RLock()
	n := len(sv.sources)
	sv.mu.RUnlock()
	status, code := "ok", http.StatusOK
	if sv.isDraining() {
		// Load balancers watching /healthz should stop routing here the
		// moment a shutdown begins.
		status, code = "draining", http.StatusServiceUnavailable
	}
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	payload := map[string]any{
		"status":           status,
		"sources":          n,
		"uptime_seconds":   int64(time.Since(sv.start).Seconds()),
		"version":          version.String(),
		"goroutines":       runtime.NumGoroutine(),
		"heap_inuse_bytes": ms.HeapInuse,
		"gc_pause_ns":      ms.PauseTotalNs,
	}
	if sv.Ingest != nil {
		payload["ingest_streams"] = len(sv.Ingest.Snapshot())
	}
	writeJSON(w, code, payload)
}

// handleFlightRec serves the flight recorder's live status; with the
// recorder disabled it reports {"enabled": false} rather than 404 so
// probes can tell "off" from "wrong URL".
func (sv *Server) handleFlightRec(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, sv.FlightRec.Status())
}

// handleDump forces a diagnostic bundle (POST /debug/dump). Coalescing and
// cooldown suppression answer 429: the bundle the caller wants either
// already exists or is being written right now.
func (sv *Server) handleDump(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodPost {
		httpError(w, http.StatusMethodNotAllowed, "POST only")
		return
	}
	if sv.FlightRec == nil {
		httpError(w, http.StatusServiceUnavailable, "flight recorder disabled")
		return
	}
	path, err := sv.FlightRec.TriggerDump("manual")
	switch {
	case errors.Is(err, flightrec.ErrDumpInProgress), errors.Is(err, flightrec.ErrCooldown):
		httpError(w, http.StatusTooManyRequests, err.Error())
	case err != nil:
		httpError(w, http.StatusInternalServerError, err.Error())
	default:
		writeJSON(w, http.StatusOK, map[string]string{"bundle": path})
	}
}

// SourceInfo describes one loaded source: the /v1/sources payload and the
// live-state summary stamped into flight-recorder bundles.
type SourceInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Lines   int    `json:"lines"`
	Bytes   int    `json:"compressed_bytes"`
	Blocks  int    `json:"blocks,omitempty"`
	RawSize int    `json:"raw_bytes,omitempty"`
}

// SourcesSummary snapshots the loaded sources, name-sorted, plus every
// live ingest stream (kind "ingest": Blocks counts sealed segments, Bytes
// their compressed size, RawSize the unsealed raw tail). loggrepd wires
// it as the flight recorder's StateFn so every bundle records what data
// the process was serving.
func (sv *Server) SourcesSummary() []SourceInfo {
	sv.mu.RLock()
	out := make([]SourceInfo, 0, len(sv.sources))
	for name, s := range sv.sources {
		info := SourceInfo{Name: name, Kind: "box", Lines: s.numLines(), Bytes: s.bytes}
		if s.arch != nil {
			info.Kind = "archive"
			info.Blocks = s.arch.NumBlocks()
			info.RawSize = s.arch.RawBytes()
		}
		out = append(out, info)
	}
	sv.mu.RUnlock()
	if sv.Ingest != nil {
		for _, si := range sv.Ingest.Snapshot() {
			out = append(out, SourceInfo{
				Name:    si.Tenant + "/" + si.Stream,
				Kind:    "ingest",
				Lines:   si.Lines,
				Bytes:   int(si.SealedSize),
				Blocks:  si.SealedSegs,
				RawSize: int(si.RawBytes),
			})
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

func (sv *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	writeJSON(w, http.StatusOK, sv.SourcesSummary())
}

func (sv *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/sources/")
	if name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, "bad source name")
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxUploadBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		if len(body) > MaxUploadBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "body too large")
			return
		}
		if err := sv.Load(name, body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"loaded": name})
	case http.MethodDelete:
		sv.mu.Lock()
		_, ok := sv.sources[name]
		delete(sv.sources, name)
		sv.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "no such source")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "PUT or DELETE")
	}
}

// resolveSource maps a source name to its querier: loaded boxes/archives
// first, then — when ingest is enabled — live ingest streams under
// "tenant/stream" (a bare "stream" means tenant "default"). nil when the
// name resolves to nothing.
func (sv *Server) resolveSource(name string) querier {
	sv.mu.RLock()
	src := sv.sources[name]
	sv.mu.RUnlock()
	if src != nil {
		return src
	}
	if sv.Ingest != nil {
		if st := sv.Ingest.Lookup(name); st != nil {
			return &ingestSource{st: st}
		}
	}
	return nil
}

// lookup resolves the source and command of a query request. On failure the
// error response has been written and errStatus/errMsg describe it (for the
// request's wide event); errStatus is 0 on success.
func (sv *Server) lookup(w http.ResponseWriter, r *http.Request) (src querier, cmd string, errStatus int, errMsg string) {
	name := r.URL.Query().Get("source")
	src = sv.resolveSource(name)
	if src == nil {
		msg := "no such source " + strconv.Quote(name)
		httpError(w, http.StatusNotFound, msg)
		return nil, "", http.StatusNotFound, msg
	}
	cmd = r.URL.Query().Get("q")
	if cmd == "" && !strings.HasSuffix(r.URL.Path, "/entry") {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return nil, "", http.StatusBadRequest, "missing q parameter"
	}
	return src, cmd, 0, ""
}

type queryResponse struct {
	Matches   int             `json:"matches"`
	Lines     []int           `json:"lines"`
	Entries   []string        `json:"entries"`
	Damaged   []damageInfo    `json:"damaged,omitempty"`
	Partial   bool            `json:"partial,omitempty"`
	PartialTo string          `json:"partial_reason,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Trace     *obsv.TraceData `json:"trace,omitempty"`
}

// damageInfo is the JSON shape of one archive.BlockError.
type damageInfo struct {
	Block     int    `json:"block"`
	FirstLine int    `json:"first_line"`
	NumLines  int    `json:"num_lines"`
	Error     string `json:"error"`
}

func damageJSON(damaged []archive.BlockError) []damageInfo {
	if len(damaged) == 0 {
		return nil
	}
	out := make([]damageInfo, len(damaged))
	for i := range damaged {
		out[i] = damageInfo{
			Block:     damaged[i].Block,
			FirstLine: damaged[i].FirstLine,
			NumLines:  damaged[i].NumLines,
			Error:     damaged[i].Err.Error(),
		}
	}
	return out
}

// queryError maps a query failure to its HTTP response and returns the
// status code written. Cancellation by a vanished client gets no response
// at all — nobody is listening — and reports status 0.
func (sv *Server) queryError(w http.ResponseWriter, err error) int {
	switch {
	case errors.Is(err, context.DeadlineExceeded):
		mQueriesTimedOut.Inc()
		httpError(w, http.StatusGatewayTimeout, "query deadline exceeded")
		return http.StatusGatewayTimeout
	case errors.Is(err, context.Canceled):
		mQueriesHTTPCancelled.Inc()
		if sv.stopCtx.Err() != nil {
			httpError(w, http.StatusServiceUnavailable, "server shutting down")
			return http.StatusServiceUnavailable
		}
		return 0
	default:
		httpError(w, http.StatusBadRequest, err.Error())
		return http.StatusBadRequest
	}
}

// startEvent begins the wide event for one request, or returns nil when
// neither the wide-event log, the flight recorder, the OTLP exporter,
// nor the live operations plane wants it; every downstream helper is
// nil-safe so the handlers stay branch-free.
func (sv *Server) startEvent(r *http.Request, endpoint string) *obsv.WideEvent {
	if sv.Events == nil && sv.FlightRec == nil && sv.OTLP == nil && sv.Liveops == nil {
		return nil
	}
	ids := obsv.IDsFrom(r.Context())
	q := r.URL.Query() // parse once; Query() re-parses per call
	return &obsv.WideEvent{
		TraceID:              ids.TraceID,
		SpanID:               ids.SpanID,
		ParentSpanID:         ids.ParentSpanID,
		TraceState:           ids.TraceState,
		Time:                 time.Now().UTC().Format(time.RFC3339Nano),
		Version:              version.Version,
		Endpoint:             endpoint,
		Source:               q.Get("source"),
		Tenant:               requestTenant(q, r.Header),
		Command:              q.Get("q"),
		BudgetScanBytes:      sv.Budget.MaxScannedBytes,
		BudgetDecompressions: sv.Budget.MaxDecompressions,
	}
}

// finishEvent stamps the event's outcome — wall-clock duration (what the
// slowlog threshold applies to), admission state, final status — then emits
// it through the log's threshold-or-sampled policy, buffers it in the
// flight recorder (which may trigger a dump), and hands it to the OTLP
// exporter (a non-blocking enqueue; a full queue drops with a counter).
func (sv *Server) finishEvent(ev *obsv.WideEvent, t0 time.Time, adm admitState, status int, errMsg string) {
	if ev == nil {
		return
	}
	ev.DurNS = time.Since(t0).Nanoseconds()
	ev.Queued, ev.Shed = adm.queued, adm.shed
	ev.Status = status
	ev.Error = errMsg
	if sv.Events != nil {
		sv.Events.Emit(ev)
	}
	sv.FlightRec.Record(ev)
	sv.OTLP.ExportEvent(ev)
	sv.Liveops.RecordEvent(ev)
}

// withBlobStats attaches per-request blob accounting to the context when
// the request has a wide event to stamp it into. The request's trace id
// rides along so blob-layer latency exemplars join the same trace.
func withBlobStats(ctx context.Context, ev *obsv.WideEvent) (context.Context, *blobstore.OpStats) {
	if ev == nil {
		return ctx, nil
	}
	bst := &blobstore.OpStats{TraceID: ev.TraceID}
	return blobstore.WithStats(ctx, bst), bst
}

// stampBlobStats copies the request's blob-layer accounting into its wide
// event; both arguments may be nil.
func stampBlobStats(ev *obsv.WideEvent, bst *blobstore.OpStats) {
	if ev == nil || bst == nil {
		return
	}
	ev.BlobOps = bst.Ops.Load()
	ev.BlobRetries = bst.Retries.Load()
	ev.BlobHedges = bst.Hedges.Load()
	ev.BlobHedgeWins = bst.HedgeWins.Load()
	ev.BlobShed = bst.Shed.Load()
	ev.BlobFailed = bst.Failed.Load()
}

func (sv *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ev := sv.startEvent(r, "query")
	release, adm, ok := sv.admit(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, adm.status, "")
		return
	}
	defer release()
	src, cmd, errStatus, errMsg := sv.lookup(w, r)
	if errStatus != 0 {
		sv.finishEvent(ev, t0, adm, errStatus, errMsg)
		return
	}
	ctx, cancel, cancelCause, ok := sv.requestContext(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, http.StatusBadRequest, "bad timeout_ms parameter")
		return
	}
	defer cancel()
	ctx, bst := withBlobStats(ctx, ev)
	ctx, doneInflight := sv.beginLiveops(ctx, r, ev, "query", cancelCause)
	defer doneInflight()
	start := time.Now()
	traced := r.URL.Query().Get("trace") == "1"
	// The wide event wants span timings even when the client didn't ask
	// for a trace; the response only carries it when requested.
	qr, err := src.query(ctx, cmd, traced || ev != nil, sv.Budget)
	stampBlobStats(ev, bst)
	if err != nil {
		if reason, ok := liveops.CancelledByOperator(ctx); ok {
			// An operator killed this request via DELETE /v1/inflight.
			// Unlike a vanished client, the caller is still listening:
			// answer a clearly-marked empty partial — the PR 3 contract,
			// degraded but never wrong.
			mQueriesHTTPCancelled.Inc()
			resp := queryResponse{
				Lines: []int{}, Entries: []string{},
				Partial: true, PartialTo: reason,
				ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
			}
			if ev != nil {
				ev.Partial, ev.PartialReason = true, reason
			}
			writeJSON(w, http.StatusOK, resp)
			sv.finishEvent(ev, t0, adm, http.StatusOK, reason)
			return
		}
		status := sv.queryError(w, err)
		sv.finishEvent(ev, t0, adm, status, err.Error())
		return
	}
	if ev != nil && qr.trace != nil {
		ev.FillFromTrace(qr.trace.Data())
	}
	if ev != nil {
		ev.Matches = int64(len(qr.lines))
		ev.Partial = qr.partial
		ev.PartialReason = qr.partialReason
		ev.DamagedRegions = int64(len(qr.damaged))
	}
	if len(qr.damaged) > 0 && r.URL.Query().Get("strict") == "1" {
		msg := fmt.Sprintf("source has %d damaged region(s); drop strict=1 for partial results", len(qr.damaged))
		httpError(w, http.StatusInternalServerError, msg)
		sv.finishEvent(ev, t0, adm, http.StatusInternalServerError, msg)
		return
	}
	resp := queryResponse{
		Matches:   len(qr.lines),
		Lines:     qr.lines,
		Entries:   qr.entries,
		Damaged:   damageJSON(qr.damaged),
		Partial:   qr.partial,
		PartialTo: qr.partialReason,
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if traced && qr.trace != nil {
		qr.trace.SetIDs(obsv.IDsFrom(ctx))
		d := qr.trace.Data()
		resp.Trace = &d
	}
	writeJSON(w, http.StatusOK, resp)
	sv.finishEvent(ev, t0, adm, http.StatusOK, "")
}

func (sv *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	t0 := time.Now()
	ev := sv.startEvent(r, "count")
	release, adm, ok := sv.admit(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, adm.status, "")
		return
	}
	defer release()
	src, cmd, errStatus, errMsg := sv.lookup(w, r)
	if errStatus != 0 {
		sv.finishEvent(ev, t0, adm, errStatus, errMsg)
		return
	}
	ctx, cancel, cancelCause, ok := sv.requestContext(w, r)
	if !ok {
		sv.finishEvent(ev, t0, adm, http.StatusBadRequest, "bad timeout_ms parameter")
		return
	}
	defer cancel()
	ctx, bst := withBlobStats(ctx, ev)
	ctx, doneInflight := sv.beginLiveops(ctx, r, ev, "count", cancelCause)
	defer doneInflight()
	start := time.Now()
	n, damaged, err := src.count(ctx, cmd)
	stampBlobStats(ev, bst)
	if err != nil {
		if reason, ok := liveops.CancelledByOperator(ctx); ok {
			mQueriesHTTPCancelled.Inc()
			if ev != nil {
				ev.Partial, ev.PartialReason = true, reason
			}
			writeJSON(w, http.StatusOK, map[string]any{
				"matches": 0, "partial": true, "partial_reason": reason,
				"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
			})
			sv.finishEvent(ev, t0, adm, http.StatusOK, reason)
			return
		}
		status := sv.queryError(w, err)
		sv.finishEvent(ev, t0, adm, status, err.Error())
		return
	}
	resp := map[string]any{
		"matches":    n,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	}
	if damaged > 0 {
		resp["damaged_regions"] = damaged
	}
	writeJSON(w, http.StatusOK, resp)
	if ev != nil {
		ev.Matches = int64(n)
		ev.DamagedRegions = int64(damaged)
	}
	sv.finishEvent(ev, t0, adm, http.StatusOK, "")
}

func (sv *Server) handleEntry(w http.ResponseWriter, r *http.Request) {
	src := sv.resolveSource(r.URL.Query().Get("source"))
	if src == nil {
		httpError(w, http.StatusNotFound, "no such source")
		return
	}
	line, err := strconv.Atoi(r.URL.Query().Get("line"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad line parameter")
		return
	}
	entry, err := src.entry(line)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"line": line, "entry": entry})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
