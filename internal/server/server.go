package server

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/http/pprof"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"loggrep/internal/archive"
	"loggrep/internal/core"
	"loggrep/internal/obsv"
)

// MaxUploadBytes bounds PUT bodies.
const MaxUploadBytes = 1 << 30

// source is one loaded compressed dataset. Store/Archive are not
// internally synchronized, so each source serializes access.
type source struct {
	mu    sync.Mutex
	box   *core.Store
	arch  *archive.Archive
	bytes int
}

func (s *source) numLines() int {
	if s.arch != nil {
		return s.arch.NumLines()
	}
	return s.box.NumLines()
}

func (s *source) query(cmd string, traced bool) ([]int, []string, []archive.BlockError, *obsv.Trace, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arch != nil {
		var (
			res *archive.Result
			tr  *obsv.Trace
			err error
		)
		if traced {
			res, tr, err = s.arch.QueryTraced(cmd, 0)
		} else {
			res, err = s.arch.Query(cmd, 0)
		}
		if err != nil {
			return nil, nil, nil, nil, err
		}
		return res.Lines, res.Entries, res.Damaged, tr, nil
	}
	var (
		res *core.Result
		tr  *obsv.Trace
		err error
	)
	if traced {
		res, tr, err = s.box.QueryTraced(cmd)
	} else {
		res, err = s.box.Query(cmd)
	}
	if err != nil {
		return nil, nil, nil, nil, err
	}
	return res.Lines, res.Entries, nil, tr, nil
}

func (s *source) count(cmd string) (matches, damaged int, err error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arch != nil {
		res, err := s.arch.Query(cmd, 0)
		if err != nil {
			return 0, 0, err
		}
		return len(res.Lines), len(res.Damaged), nil
	}
	matches, err = s.box.Count(cmd)
	return matches, 0, err
}

func (s *source) entry(line int) (string, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.arch != nil {
		return s.arch.Entry(line)
	}
	return s.box.ReconstructLine(line)
}

// Server is the HTTP handler set.
type Server struct {
	// Pprof mounts net/http/pprof under /debug/pprof/ when set before
	// Handler is called. Off by default: the profiling endpoints expose
	// internals and should be opt-in (loggrepd -pprof).
	Pprof bool

	mu      sync.RWMutex
	sources map[string]*source
	start   time.Time
}

// New returns an empty server.
func New() *Server {
	return &Server{sources: make(map[string]*source), start: time.Now()}
}

// Load registers compressed data under a name (box or archive,
// auto-detected).
func (sv *Server) Load(name string, data []byte) error {
	if name == "" {
		return fmt.Errorf("server: empty source name")
	}
	src := &source{bytes: len(data)}
	if archive.IsArchive(data) {
		a, err := archive.Open(data)
		if err != nil {
			return err
		}
		src.arch = a
	} else {
		st, err := core.Open(data, core.QueryOptions{})
		if err != nil {
			return err
		}
		src.box = st
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	sv.sources[name] = src
	return nil
}

// Handler returns the routed http.Handler. Every endpoint is wrapped with
// per-endpoint request/latency metrics (see instrument).
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("/healthz", instrument("healthz", sv.handleHealthz))
	mux.HandleFunc("/metrics", instrument("metrics", handleMetrics))
	mux.HandleFunc("/v1/sources", instrument("sources", sv.handleSources))
	mux.HandleFunc("/v1/sources/", instrument("source", sv.handleSource))
	mux.HandleFunc("/v1/query", instrument("query", sv.handleQuery))
	mux.HandleFunc("/v1/count", instrument("count", sv.handleCount))
	mux.HandleFunc("/v1/entry", instrument("entry", sv.handleEntry))
	if sv.Pprof {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
	return mux
}

func (sv *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	sv.mu.RLock()
	n := len(sv.sources)
	sv.mu.RUnlock()
	writeJSON(w, http.StatusOK, map[string]any{
		"status":         "ok",
		"sources":        n,
		"uptime_seconds": int64(time.Since(sv.start).Seconds()),
	})
}

type sourceInfo struct {
	Name    string `json:"name"`
	Kind    string `json:"kind"`
	Lines   int    `json:"lines"`
	Bytes   int    `json:"compressed_bytes"`
	Blocks  int    `json:"blocks,omitempty"`
	RawSize int    `json:"raw_bytes,omitempty"`
}

func (sv *Server) handleSources(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	sv.mu.RLock()
	defer sv.mu.RUnlock()
	out := make([]sourceInfo, 0, len(sv.sources))
	for name, s := range sv.sources {
		info := sourceInfo{Name: name, Kind: "box", Lines: s.numLines(), Bytes: s.bytes}
		if s.arch != nil {
			info.Kind = "archive"
			info.Blocks = s.arch.NumBlocks()
			info.RawSize = s.arch.RawBytes()
		}
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	writeJSON(w, http.StatusOK, out)
}

func (sv *Server) handleSource(w http.ResponseWriter, r *http.Request) {
	name := strings.TrimPrefix(r.URL.Path, "/v1/sources/")
	if name == "" || strings.Contains(name, "/") {
		httpError(w, http.StatusBadRequest, "bad source name")
		return
	}
	switch r.Method {
	case http.MethodPut, http.MethodPost:
		body, err := io.ReadAll(io.LimitReader(r.Body, MaxUploadBytes+1))
		if err != nil {
			httpError(w, http.StatusBadRequest, "read body: "+err.Error())
			return
		}
		if len(body) > MaxUploadBytes {
			httpError(w, http.StatusRequestEntityTooLarge, "body too large")
			return
		}
		if err := sv.Load(name, body); err != nil {
			httpError(w, http.StatusBadRequest, err.Error())
			return
		}
		writeJSON(w, http.StatusCreated, map[string]string{"loaded": name})
	case http.MethodDelete:
		sv.mu.Lock()
		_, ok := sv.sources[name]
		delete(sv.sources, name)
		sv.mu.Unlock()
		if !ok {
			httpError(w, http.StatusNotFound, "no such source")
			return
		}
		writeJSON(w, http.StatusOK, map[string]string{"deleted": name})
	default:
		httpError(w, http.StatusMethodNotAllowed, "PUT or DELETE")
	}
}

func (sv *Server) lookup(w http.ResponseWriter, r *http.Request) (*source, string, bool) {
	name := r.URL.Query().Get("source")
	sv.mu.RLock()
	src := sv.sources[name]
	sv.mu.RUnlock()
	if src == nil {
		httpError(w, http.StatusNotFound, "no such source "+strconv.Quote(name))
		return nil, "", false
	}
	cmd := r.URL.Query().Get("q")
	if cmd == "" && !strings.HasSuffix(r.URL.Path, "/entry") {
		httpError(w, http.StatusBadRequest, "missing q parameter")
		return nil, "", false
	}
	return src, cmd, true
}

type queryResponse struct {
	Matches   int             `json:"matches"`
	Lines     []int           `json:"lines"`
	Entries   []string        `json:"entries"`
	Damaged   []damageInfo    `json:"damaged,omitempty"`
	ElapsedMS float64         `json:"elapsed_ms"`
	Trace     *obsv.TraceData `json:"trace,omitempty"`
}

// damageInfo is the JSON shape of one archive.BlockError.
type damageInfo struct {
	Block     int    `json:"block"`
	FirstLine int    `json:"first_line"`
	NumLines  int    `json:"num_lines"`
	Error     string `json:"error"`
}

func damageJSON(damaged []archive.BlockError) []damageInfo {
	if len(damaged) == 0 {
		return nil
	}
	out := make([]damageInfo, len(damaged))
	for i := range damaged {
		out[i] = damageInfo{
			Block:     damaged[i].Block,
			FirstLine: damaged[i].FirstLine,
			NumLines:  damaged[i].NumLines,
			Error:     damaged[i].Err.Error(),
		}
	}
	return out
}

func (sv *Server) handleQuery(w http.ResponseWriter, r *http.Request) {
	src, cmd, ok := sv.lookup(w, r)
	if !ok {
		return
	}
	start := time.Now()
	traced := r.URL.Query().Get("trace") == "1"
	lines, entries, damaged, tr, err := src.query(cmd, traced)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	if len(damaged) > 0 && r.URL.Query().Get("strict") == "1" {
		httpError(w, http.StatusInternalServerError,
			fmt.Sprintf("source has %d damaged region(s); drop strict=1 for partial results", len(damaged)))
		return
	}
	resp := queryResponse{
		Matches:   len(lines),
		Lines:     lines,
		Entries:   entries,
		Damaged:   damageJSON(damaged),
		ElapsedMS: float64(time.Since(start).Microseconds()) / 1000,
	}
	if tr != nil {
		d := tr.Data()
		resp.Trace = &d
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleCount(w http.ResponseWriter, r *http.Request) {
	src, cmd, ok := sv.lookup(w, r)
	if !ok {
		return
	}
	start := time.Now()
	n, damaged, err := src.count(cmd)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	resp := map[string]any{
		"matches":    n,
		"elapsed_ms": float64(time.Since(start).Microseconds()) / 1000,
	}
	if damaged > 0 {
		resp["damaged_regions"] = damaged
	}
	writeJSON(w, http.StatusOK, resp)
}

func (sv *Server) handleEntry(w http.ResponseWriter, r *http.Request) {
	name := r.URL.Query().Get("source")
	sv.mu.RLock()
	src := sv.sources[name]
	sv.mu.RUnlock()
	if src == nil {
		httpError(w, http.StatusNotFound, "no such source")
		return
	}
	line, err := strconv.Atoi(r.URL.Query().Get("line"))
	if err != nil {
		httpError(w, http.StatusBadRequest, "bad line parameter")
		return
	}
	entry, err := src.entry(line)
	if err != nil {
		httpError(w, http.StatusBadRequest, err.Error())
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{"line": line, "entry": entry})
}

func writeJSON(w http.ResponseWriter, code int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(v)
}

func httpError(w http.ResponseWriter, code int, msg string) {
	writeJSON(w, code, map[string]string{"error": msg})
}
