package server

import (
	"context"
	"net/http"
	"net/url"
	"strings"

	"loggrep/internal/liveops"
	"loggrep/internal/obsv"
	"loggrep/internal/query"
)

// requestTenant resolves the accountable tenant of a request: the
// explicit ?tenant= parameter first (the ingest convention), then the
// X-Loggrep-Tenant header (read-path clients that front many tenants),
// then the tenant prefix of a "tenant/stream" source name, and finally
// "default". The result is sanitized, so a hostile name cannot corrupt
// metric labels downstream. Takes pre-parsed query values — url.Query()
// re-parses on every call, and this sits on the request hot path.
func requestTenant(q url.Values, h http.Header) string {
	if t := q.Get("tenant"); t != "" {
		return liveops.SanitizeTenant(t)
	}
	if t := h.Get("X-Loggrep-Tenant"); t != "" {
		return liveops.SanitizeTenant(t)
	}
	if src := q.Get("source"); src != "" {
		if i := strings.IndexByte(src, '/'); i > 0 {
			return liveops.SanitizeTenant(src[:i])
		}
	}
	return "default"
}

// beginLiveops registers one request in the in-flight registry and
// attaches its progress publisher to the context so the engine's
// cooperative checkpoints feed the live view. The returned context and
// done func are always usable; with the plane disabled they are the
// input context and a no-op.
func (sv *Server) beginLiveops(ctx context.Context, r *http.Request, ev *obsv.WideEvent, endpoint string, cancel context.CancelCauseFunc) (context.Context, func()) {
	if sv.Liveops == nil {
		return ctx, func() {}
	}
	deadline, _ := ctx.Deadline()
	spec := liveops.EntrySpec{
		Endpoint:             endpoint,
		Deadline:             deadline,
		Cancel:               cancel,
		BudgetScanBytes:      sv.Budget.MaxScannedBytes,
		BudgetDecompressions: sv.Budget.MaxDecompressions,
	}
	if ev != nil {
		// startEvent already parsed the request; reuse its fields rather
		// than re-parsing the URL on the query hot path.
		spec.ID, spec.Tenant = ev.TraceID, ev.Tenant
		spec.Query, spec.Source = ev.Command, ev.Source
	} else {
		q := r.URL.Query()
		spec.ID = obsv.IDsFrom(ctx).TraceID
		spec.Tenant = requestTenant(q, r.Header)
		spec.Query = q.Get("q")
		spec.Source = q.Get("source")
	}
	if cmd := spec.Query; cmd != "" {
		// Canonicalization costs a parse; defer it to the operator's
		// Snapshot (the cold path) instead of paying it per request.
		spec.CanonicalFn = func() string {
			if c := query.Canonical(cmd); c != cmd {
				return c
			}
			return ""
		}
	}
	e := sv.Liveops.Inflight.Register(spec)
	return liveops.WithProgress(ctx, e.Progress), e.Done
}

// handleInflight serves GET /v1/inflight: the live in-flight requests,
// oldest first. With the plane disabled it reports {"enabled": false}
// rather than 404, like /debug/flightrec, so probes can tell "off" from
// "wrong URL".
func (sv *Server) handleInflight(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only (DELETE takes /v1/inflight/{id})")
		return
	}
	if sv.Liveops == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	views := sv.Liveops.Inflight.Snapshot()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":  true,
		"inflight": views,
		"count":    len(views),
	})
}

// handleInflightID serves DELETE /v1/inflight/{id}: cancel one in-flight
// request by trace id. The cancellation is cooperative — the engine's
// next checkpoint observes it — and the cancelled handler answers its
// client with an empty partial marked "cancelled", never a wrong result.
func (sv *Server) handleInflightID(w http.ResponseWriter, r *http.Request) {
	id := strings.TrimPrefix(r.URL.Path, "/v1/inflight/")
	if id == "" || strings.Contains(id, "/") {
		httpError(w, http.StatusBadRequest, "bad inflight id")
		return
	}
	if r.Method != http.MethodDelete {
		httpError(w, http.StatusMethodNotAllowed, "DELETE only")
		return
	}
	if sv.Liveops == nil {
		httpError(w, http.StatusServiceUnavailable, "liveops disabled")
		return
	}
	if !sv.Liveops.Inflight.Cancel(id) {
		httpError(w, http.StatusNotFound, "no cancellable in-flight request with that id")
		return
	}
	writeJSON(w, http.StatusOK, map[string]string{"cancelled": id})
}

// handleUsage serves GET /v1/usage: per-tenant resource consumption,
// cumulative and windowed.
func (sv *Server) handleUsage(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if sv.Liveops == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled": true,
		"tenants": sv.Liveops.Usage.Snapshot(),
	})
}

// handleSLO serves GET /v1/slo: every objective's compliance, budget and
// multi-window burn rates.
func (sv *Server) handleSLO(w http.ResponseWriter, r *http.Request) {
	if r.Method != http.MethodGet {
		httpError(w, http.StatusMethodNotAllowed, "GET only")
		return
	}
	if sv.Liveops == nil {
		writeJSON(w, http.StatusOK, map[string]any{"enabled": false})
		return
	}
	sv.Liveops.SLO.Evaluate()
	writeJSON(w, http.StatusOK, map[string]any{
		"enabled":    true,
		"objectives": sv.Liveops.SLO.Snapshot(),
	})
}
