package blockindex

import (
	"encoding/binary"
	"sort"
)

// maxVocabTokens caps the archive-wide postings vocabulary. Structured
// logs land far below it (the vocabulary holds token *shapes*, with
// numeric runs collapsed); an archive that overflows it is effectively
// unstructured text, and the Builder drops the postings section rather
// than emit an incomplete (hence unsound) one. Blooms are unaffected.
const maxVocabTokens = 1 << 16

// Builder accumulates per-block scans in write order and encodes the
// index sections for Writer.Close.
type Builder struct {
	blocks []builderBlock
	// vocab maps each normalized token to the ordinals of the blocks
	// containing it; nil after overflow.
	vocab    map[string][]uint32
	overflow bool
}

type builderBlock struct {
	lineOff  uint64
	numLines uint64
	nbits    uint32
	k        uint8
	bits     []byte
	overlong bool
}

// NewBuilder returns an empty index builder.
func NewBuilder() *Builder {
	return &Builder{vocab: make(map[string][]uint32)}
}

// Add appends one block's scan. frameBytes is the block's compressed
// frame size, which budgets the bloom filter (see bloom.go). Blocks must
// be added in stream order with their final line offsets — the archive
// writer calls this from its frame collector, where all three are known.
func (b *Builder) Add(lineOff uint64, numLines, frameBytes int, sc *BlockScan) {
	budget := frameBytes / bloomBudgetDenom
	if budget < minBloomBudgetBytes {
		budget = minBloomBudgetBytes
	}
	ord := uint32(len(b.blocks))
	nbits, k, bits := buildBloom(sc.grams, budget)
	b.blocks = append(b.blocks, builderBlock{
		lineOff:  lineOff,
		numLines: uint64(numLines),
		nbits:    nbits,
		k:        k,
		bits:     bits,
		overlong: sc.overlong,
	})
	if b.overflow {
		return
	}
	for tok := range sc.vocab {
		b.vocab[tok] = append(b.vocab[tok], ord)
		if len(b.vocab) > maxVocabTokens {
			b.overflow = true
			b.vocab = nil
			return
		}
	}
}

// VocabOverflowed reports whether the postings section was dropped
// because the vocabulary cap was hit.
func (b *Builder) VocabOverflowed() bool { return b.overflow }

// Sections encodes the framed index sections (blooms first, then
// postings unless the vocabulary overflowed). It returns nil for an
// empty archive.
func (b *Builder) Sections() []byte {
	if len(b.blocks) == 0 {
		return nil
	}
	out := appendSection(nil, KindBlooms, b.encodeBlooms())
	if !b.overflow {
		out = appendSection(out, KindPostings, b.encodePostings())
	}
	return out
}

func appendUvarint(dst []byte, v uint64) []byte {
	var tmp [binary.MaxVarintLen64]byte
	return append(dst, tmp[:binary.PutUvarint(tmp[:], v)]...)
}

func (b *Builder) encodeBlooms() []byte {
	p := appendUvarint(nil, uint64(len(b.blocks)))
	for _, bb := range b.blocks {
		p = appendUvarint(p, bb.lineOff)
		p = appendUvarint(p, bb.numLines)
		p = appendUvarint(p, uint64(bb.k))
		p = appendUvarint(p, uint64(bb.nbits))
		p = append(p, bb.bits...)
	}
	return p
}

func (b *Builder) encodePostings() []byte {
	p := appendUvarint(nil, uint64(len(b.blocks)))
	bitmapLen := (len(b.blocks) + 7) / 8
	always := make([]byte, bitmapLen)
	for i, bb := range b.blocks {
		p = appendUvarint(p, bb.lineOff)
		p = appendUvarint(p, bb.numLines)
		if bb.overlong {
			always[i/8] |= 1 << (i % 8)
		}
	}
	p = append(p, always...)
	toks := make([]string, 0, len(b.vocab))
	for tok := range b.vocab {
		toks = append(toks, tok)
	}
	sort.Strings(toks) // deterministic bytes for identical input
	p = appendUvarint(p, uint64(len(toks)))
	bitmap := make([]byte, bitmapLen)
	for _, tok := range toks {
		p = appendUvarint(p, uint64(len(tok)))
		p = append(p, tok...)
		for i := range bitmap {
			bitmap[i] = 0
		}
		for _, ord := range b.vocab[tok] {
			bitmap[ord/8] |= 1 << (ord % 8)
		}
		p = append(p, bitmap...)
	}
	return p
}
