package blockindex

import (
	"encoding/binary"
	"hash/crc32"
)

// Index sections live after the archive's v2 terminator frame, each
// framed by an 18-byte header:
//
//	[0,4)   magic "LGIX"
//	[4]     kind (1 = blooms, 2 = postings)
//	[5]     version (currently 1)
//	[6,10)  payload length, u32 LE
//	[10,14) CRC32C of the payload
//	[14,18) CRC32C of header bytes [0,14)
//
// Sections are independent: a damaged payload skips that section only
// (its header still gives the length of the region to jump), a damaged
// header or foreign magic stops the scan. Unknown kinds and versions are
// skipped, so the framing is forward-extensible.
const (
	sectionMagic      = "LGIX"
	sectionHeaderSize = 18
	sectionVersion    = 1

	// KindBlooms and KindPostings identify the two section payloads.
	KindBlooms   = 1
	KindPostings = 2
)

// Decode caps for untrusted payloads: every count read from the wire is
// checked against both its cap and the bytes remaining, so a hostile
// section cannot make the decoder allocate more than O(payload).
const (
	decodeMaxBlocks   = 1 << 20
	decodeMaxTokens   = 1 << 20
	decodeMaxTokenLen = 1 << 10
	decodeMaxBits     = 1 << 26
	decodeMaxK        = 32
)

var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// appendSection frames one payload.
func appendSection(dst []byte, kind byte, payload []byte) []byte {
	var h [sectionHeaderSize]byte
	copy(h[0:4], sectionMagic)
	h[4] = kind
	h[5] = sectionVersion
	binary.LittleEndian.PutUint32(h[6:10], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[10:14], crc32.Checksum(payload, castagnoli))
	binary.LittleEndian.PutUint32(h[14:18], crc32.Checksum(h[0:14], castagnoli))
	dst = append(dst, h[:]...)
	return append(dst, payload...)
}

// SectionInfo locates one index section within the archive tail, for
// inspection and fault-injection tooling.
type SectionInfo struct {
	Off  int  // header offset relative to the tail
	Len  int  // header + payload bytes
	Kind byte // KindBlooms or KindPostings (or an unknown value)
	OK   bool // header and payload checksums verified
}

// ScanSections walks the section framing without decoding payloads. It
// stops at the first byte run that is not a healthy "LGIX" header, so
// trailing foreign data after the sections is simply not index bytes.
func ScanSections(tail []byte) []SectionInfo {
	var out []SectionInfo
	pos := 0
	for pos+sectionHeaderSize <= len(tail) {
		h := tail[pos : pos+sectionHeaderSize]
		if string(h[0:4]) != sectionMagic {
			break
		}
		if crc32.Checksum(h[0:14], castagnoli) != binary.LittleEndian.Uint32(h[14:18]) {
			break
		}
		plen := int(binary.LittleEndian.Uint32(h[6:10]))
		if pos+sectionHeaderSize+plen > len(tail) {
			break
		}
		payload := tail[pos+sectionHeaderSize : pos+sectionHeaderSize+plen]
		ok := crc32.Checksum(payload, castagnoli) == binary.LittleEndian.Uint32(h[10:14])
		out = append(out, SectionInfo{Off: pos, Len: sectionHeaderSize + plen, Kind: h[4], OK: ok})
		pos += sectionHeaderSize + plen
	}
	return out
}

// Stats summarizes the decoded index for inspection surfaces.
type Stats struct {
	BloomBytes    int // framed bytes of the bloom section (0 if absent)
	PostingsBytes int // framed bytes of the postings section (0 if absent)
	Blocks        int // blocks covered by either section
	Tokens        int // postings vocabulary size
	Damaged       int // sections present but unusable (checksum/decode)
}

// TotalBytes is the framed size of every healthy index section.
func (s Stats) TotalBytes() int { return s.BloomBytes + s.PostingsBytes }

// Index is the decoded block-skipping index of one archive.
type Index struct {
	Blooms    *BloomSection    // nil when absent or damaged
	Postings  *PostingsSection // nil when absent or damaged
	ScanStats Stats
}

// Empty reports whether no usable section was decoded.
func (ix *Index) Empty() bool {
	return ix == nil || (ix.Blooms == nil && ix.Postings == nil)
}

// DecodeSections decodes the archive tail into an Index. It never fails:
// damage is counted and the affected section dropped, because a missing
// index is always answerable by scanning every block.
func DecodeSections(tail []byte) *Index {
	ix := &Index{}
	pos := 0
	for pos+sectionHeaderSize <= len(tail) {
		h := tail[pos : pos+sectionHeaderSize]
		if string(h[0:4]) != sectionMagic {
			break
		}
		if crc32.Checksum(h[0:14], castagnoli) != binary.LittleEndian.Uint32(h[14:18]) {
			// The header cannot be trusted, so neither can the payload
			// length needed to resynchronize past it.
			ix.ScanStats.Damaged++
			break
		}
		plen := int(binary.LittleEndian.Uint32(h[6:10]))
		if pos+sectionHeaderSize+plen > len(tail) {
			ix.ScanStats.Damaged++
			break
		}
		payload := tail[pos+sectionHeaderSize : pos+sectionHeaderSize+plen]
		framed := sectionHeaderSize + plen
		pos += framed
		if crc32.Checksum(payload, castagnoli) != binary.LittleEndian.Uint32(h[10:14]) {
			ix.ScanStats.Damaged++
			continue
		}
		if h[5] != sectionVersion {
			continue // future version: not ours to judge
		}
		switch h[4] {
		case KindBlooms:
			if ix.Blooms != nil {
				continue // first healthy section of a kind wins
			}
			bs, ok := decodeBloomSection(payload)
			if !ok {
				ix.ScanStats.Damaged++
				continue
			}
			ix.Blooms = bs
			ix.ScanStats.BloomBytes = framed
		case KindPostings:
			if ix.Postings != nil {
				continue
			}
			ps, ok := decodePostingsSection(payload)
			if !ok {
				ix.ScanStats.Damaged++
				continue
			}
			ix.Postings = ps
			ix.ScanStats.PostingsBytes = framed
		}
	}
	if ix.Blooms != nil {
		ix.ScanStats.Blocks = len(ix.Blooms.blocks)
	}
	if ix.Postings != nil {
		ix.ScanStats.Tokens = len(ix.Postings.tokens)
		if n := len(ix.Postings.blocks); n > ix.ScanStats.Blocks {
			ix.ScanStats.Blocks = n
		}
	}
	return ix
}

// blockKey identifies a block across index sections and the archive's
// frame table: damage can reorder or drop frames, so positional identity
// is not safe, but (line offset, line count) survives resynchronization.
type blockKey struct {
	lineOff  uint64
	numLines uint64
}

// BloomSection maps block keys to their gram filters.
type BloomSection struct {
	blocks []bloomBlock
	byKey  map[blockKey]int
}

type bloomBlock struct {
	key   blockKey
	nbits uint32
	k     uint8
	bits  []byte // aliases the section payload
}

// PostingsSection is the archive-wide token → blocks table.
type PostingsSection struct {
	blocks []blockKey
	byKey  map[blockKey]int
	// alwaysAdmit marks blocks whose vocabulary was incomplete
	// (overlong tokens): bit i of byte i/8, aliasing the payload.
	alwaysAdmit []byte
	tokens      []tokenPostings
}

type tokenPostings struct {
	tok  string
	bits []byte // block bitmap, bit i of byte i/8, aliases the payload
}

type payloadReader struct {
	b   []byte
	pos int
	bad bool
}

func (r *payloadReader) uvarint() uint64 {
	v, n := binary.Uvarint(r.b[r.pos:])
	if n <= 0 {
		r.bad = true
		return 0
	}
	r.pos += n
	return v
}

func (r *payloadReader) bytes(n int) []byte {
	if n < 0 || r.pos+n > len(r.b) {
		r.bad = true
		return nil
	}
	s := r.b[r.pos : r.pos+n]
	r.pos += n
	return s
}

func (r *payloadReader) done() bool { return r.pos == len(r.b) }

// Bloom payload: uvarint numBlocks, then per block uvarint lineOff,
// numLines, k, nbits and ceil(nbits/8) filter bytes. k=0/nbits=0 means
// "no filter, always admit".
func decodeBloomSection(payload []byte) (*BloomSection, bool) {
	r := &payloadReader{b: payload}
	n := r.uvarint()
	if r.bad || n > decodeMaxBlocks || int(n) > len(payload) {
		return nil, false
	}
	bs := &BloomSection{
		blocks: make([]bloomBlock, 0, int(n)),
		byKey:  make(map[blockKey]int, int(n)),
	}
	for i := uint64(0); i < n; i++ {
		var bb bloomBlock
		bb.key.lineOff = r.uvarint()
		bb.key.numLines = r.uvarint()
		k := r.uvarint()
		nbits := r.uvarint()
		if r.bad || k > decodeMaxK || nbits > decodeMaxBits {
			return nil, false
		}
		bb.k = uint8(k)
		bb.nbits = uint32(nbits)
		bb.bits = r.bytes(int((nbits + 7) / 8))
		if r.bad {
			return nil, false
		}
		if (bb.k == 0) != (bb.nbits == 0) {
			return nil, false
		}
		if _, dup := bs.byKey[bb.key]; dup {
			return nil, false
		}
		bs.byKey[bb.key] = len(bs.blocks)
		bs.blocks = append(bs.blocks, bb)
	}
	if !r.done() {
		return nil, false
	}
	return bs, true
}

// Postings payload: uvarint numBlocks, per block uvarint lineOff and
// numLines, an always-admit bitmap of ceil(numBlocks/8) bytes, uvarint
// numTokens, then per token uvarint length, the normalized token bytes,
// and a block bitmap of ceil(numBlocks/8) bytes.
func decodePostingsSection(payload []byte) (*PostingsSection, bool) {
	r := &payloadReader{b: payload}
	n := r.uvarint()
	if r.bad || n > decodeMaxBlocks || int(n) > len(payload) {
		return nil, false
	}
	ps := &PostingsSection{
		blocks: make([]blockKey, 0, int(n)),
		byKey:  make(map[blockKey]int, int(n)),
	}
	for i := uint64(0); i < n; i++ {
		var k blockKey
		k.lineOff = r.uvarint()
		k.numLines = r.uvarint()
		if r.bad {
			return nil, false
		}
		if _, dup := ps.byKey[k]; dup {
			return nil, false
		}
		ps.byKey[k] = len(ps.blocks)
		ps.blocks = append(ps.blocks, k)
	}
	bitmapLen := int((n + 7) / 8)
	ps.alwaysAdmit = r.bytes(bitmapLen)
	nt := r.uvarint()
	if r.bad || nt > decodeMaxTokens || int(nt) > len(payload) {
		return nil, false
	}
	ps.tokens = make([]tokenPostings, 0, int(nt))
	for i := uint64(0); i < nt; i++ {
		tl := r.uvarint()
		if r.bad || tl > decodeMaxTokenLen {
			return nil, false
		}
		tok := r.bytes(int(tl))
		bits := r.bytes(bitmapLen)
		if r.bad {
			return nil, false
		}
		ps.tokens = append(ps.tokens, tokenPostings{tok: string(tok), bits: bits})
	}
	if !r.done() {
		return nil, false
	}
	return ps, true
}

func bitmapTest(bits []byte, i int) bool {
	return i/8 < len(bits) && bits[i/8]&(1<<(i%8)) != 0
}
