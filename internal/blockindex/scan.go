package blockindex

import "loggrep/internal/logparse"

// maxVocabTokenLen caps a normalized token's length in the postings
// vocabulary. A block containing a longer token is marked always-admit
// in the postings section instead — dropping the token silently would
// let a fragment hiding inside it be skipped.
const maxVocabTokenLen = 96

// BlockScan is the index-relevant digest of one raw block, computed by
// the archive writer's compression workers before the block order is
// known; Builder.Add later binds it to a line offset.
type BlockScan struct {
	// grams is the distinct 4-gram hash set of all tokens; nil when the
	// block exceeded maxBlockGrams (no bloom, always admit).
	grams map[uint64]struct{}
	// vocab is the distinct normalized token set, pure-volatile shapes
	// excluded.
	vocab map[string]struct{}
	// overlong records that some normalized token exceeded
	// maxVocabTokenLen and was left out of vocab, so postings must
	// always admit this block.
	overlong bool
}

// ScanBlock tokenizes one raw block and digests it for indexing. Tokens
// are maximal runs of non-delimiter bytes within a line; '\n' is treated
// as a boundary even though the query grammar has no delimiter for it,
// because entries are single lines and a fragment spanning a newline can
// match nothing.
func ScanBlock(block []byte) *BlockScan {
	sc := &BlockScan{
		grams: make(map[uint64]struct{}),
		vocab: make(map[string]struct{}),
	}
	start := -1
	flush := func(end int) {
		if start < 0 {
			return
		}
		tok := string(block[start:end])
		start = -1
		if sc.grams != nil {
			for i := 0; i+GramLen <= len(tok); i++ {
				sc.grams[gramHash(tok[i], tok[i+1], tok[i+2], tok[i+3])] = struct{}{}
			}
			if len(sc.grams) > maxBlockGrams {
				sc.grams = nil
			}
		}
		norm := Normalize(tok)
		if pureVolatile(norm) {
			return
		}
		if len(norm) > maxVocabTokenLen {
			sc.overlong = true
			return
		}
		sc.vocab[norm] = struct{}{}
	}
	for i := 0; i < len(block); i++ {
		b := block[i]
		if b == '\n' || logparse.IsDelim(b) {
			flush(i)
			continue
		}
		if start < 0 {
			start = i
		}
	}
	flush(len(block))
	return sc
}
