// Package blockindex builds and queries the optional block-skipping index
// of a v2 archive: a per-block bloom filter over token 4-grams and a
// per-archive token → block postings table. Both are written after the
// archive terminator frame as self-describing CRC32C-protected sections,
// so readers that predate the index (and readers that find it damaged)
// ignore it and fall back to scanning every block — the index can only
// ever skip work, never change a query's result.
//
// # Soundness
//
// Query fragments (the wildcard-free pieces of keywords) are
// delimiter-free by construction, so a fragment that occurs in a log line
// occurs inside a single line token (a maximal run of non-delimiter
// bytes). That reduces "block may contain a match" to "some token of the
// block may contain the fragment as a substring", which the two
// structures over-approximate independently:
//
//   - The postings table stores every distinct normalized token of the
//     archive and the set of blocks it appears in. Normalization collapses
//     each maximal run of numeric/hex bytes [0-9a-fA-F] to one marker
//     byte, which (a) is substring-preserving — if f is a substring of t,
//     the normal form of f is a substring of the normal form of t — and
//     (b) folds the unbounded space of numbers, ids and hashes into a
//     small vocabulary of token shapes. A fragment is postings-filterable
//     when its normal form keeps at least one non-volatile byte; the
//     candidate blocks are the union over vocabulary tokens containing
//     the fragment's normal form.
//
//   - The per-block bloom filter stores the raw 4-byte grams of every
//     token in the block. A fragment of length ≥ 4 can only match inside
//     a block whose bloom contains all of the fragment's 4-grams.
//
// Fragments that neither filter can judge admit every block, NOT
// subtrees admit every block, and blocks absent from a (possibly
// damaged) section are always admitted: the plan degrades toward the
// full scan, never past it.
package blockindex
