package blockindex

import (
	"testing"

	"loggrep/internal/query"
)

// fuzzSeedSections builds real encoded index tails plus damaged
// variants — the corpus the decode fuzzer starts from.
func fuzzSeedSections(f *testing.F) [][]byte {
	f.Helper()
	b := NewBuilder()
	b.Add(0, 2, 1<<20, ScanBlock([]byte("alpha ERROR omega\ncode 1234 end\n")))
	b.Add(2, 1, 1<<20, ScanBlock([]byte("delta warn paths req-7f3a\n")))
	full := b.Sections()

	flipped := append([]byte(nil), full...)
	flipped[len(flipped)/2] ^= 0x40
	headerHit := append([]byte(nil), full...)
	headerHit[4] ^= 0xff // kind byte

	empty := NewBuilder()
	empty.Add(0, 1, 1<<20, ScanBlock(nil))

	return [][]byte{
		full,
		full[:len(full)/2], // truncated mid-section
		flipped,            // payload bit flip
		headerHit,          // header bit flip
		empty.Sections(),
		[]byte(sectionMagic),
		nil,
	}
}

// FuzzDecodeSections: arbitrary tail bytes must never panic the decoder,
// must never allocate beyond the documented caps, and whatever decodes
// must behave like an index — internally consistent and safe to plan
// against. The tail is the least-trusted region of an archive: it sits
// after the terminator, so v1 readers never validated it at all.
func FuzzDecodeSections(f *testing.F) {
	for _, seed := range fuzzSeedSections(f) {
		f.Add(seed)
	}
	exprs := []query.Expr{nil}
	for _, cmd := range []string{"ERROR", "1234", "alpha AND paths", "zz OR 7f3a NOT code"} {
		e, err := query.Parse(cmd)
		if err != nil {
			f.Fatal(err)
		}
		exprs = append(exprs, e)
	}
	f.Fuzz(func(t *testing.T, tail []byte) {
		ix := DecodeSections(tail)
		if ix == nil {
			t.Fatal("DecodeSections returned nil")
		}
		st := ix.ScanStats
		if st.BloomBytes < 0 || st.PostingsBytes < 0 || st.Damaged < 0 {
			t.Fatalf("negative stats: %+v", st)
		}
		if st.TotalBytes() > len(tail) {
			t.Fatalf("claims %d healthy bytes from a %d-byte tail", st.TotalBytes(), len(tail))
		}
		if ix.Blooms != nil {
			if st.Blocks < len(ix.Blooms.blocks) {
				t.Fatalf("Stats.Blocks %d < bloom blocks %d", st.Blocks, len(ix.Blooms.blocks))
			}
			for i := range ix.Blooms.blocks {
				bb := &ix.Blooms.blocks[i]
				if (bb.k == 0) != (bb.nbits == 0) {
					t.Fatalf("bloom block %d half-empty: k=%d nbits=%d", i, bb.k, bb.nbits)
				}
				if int(bb.nbits) > decodeMaxBits || bb.k > decodeMaxK {
					t.Fatalf("bloom block %d exceeds caps: k=%d nbits=%d", i, bb.k, bb.nbits)
				}
			}
		}
		if ix.Postings != nil {
			if len(ix.Postings.tokens) != st.Tokens {
				t.Fatalf("Stats.Tokens %d != decoded tokens %d", st.Tokens, len(ix.Postings.tokens))
			}
			for i := range ix.Postings.tokens {
				if len(ix.Postings.tokens[i].tok) > decodeMaxTokenLen {
					t.Fatalf("token %d exceeds length cap", i)
				}
			}
		}
		// Every decoded index must be safe to plan and probe with.
		for _, e := range exprs {
			p := ix.NewPlan(e)
			p.Admits(0, 1)
			p.Admits(0, 2)
			p.Admits(2, 1)
			p.Admits(1<<40, 3)
		}
		// Section scanning must agree with decoding about tail coverage.
		for _, in := range ScanSections(tail) {
			if in.Off < 0 || in.Len < sectionHeaderSize || in.Off+in.Len > len(tail) {
				t.Fatalf("section info out of range: %+v over %d bytes", in, len(tail))
			}
		}
	})
}
