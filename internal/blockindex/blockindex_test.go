package blockindex

import (
	"encoding/binary"
	"hash/crc32"
	"math/rand"
	"strings"
	"testing"

	"loggrep/internal/query"
)

func TestNormalize(t *testing.T) {
	cases := []struct{ in, want string }{
		{"", ""},
		{"ERROR", "#RROR"}, // E is a hex letter
		{"warn", "w#rn"},   // a is a hex letter
		{"zzz", "zzz"},
		{"1234", "#"},
		{"deadbeef", "#"},
		{"DEADBEEF", "#"},
		{"req-42", "r#q-#"},
		{"TraceId:3615b60b8a", "Tr#I#:#"}, // a,c,e and d are hex runs
		{"v1.2.3", "v#.#.#"},
		{"10.0.0.1:8080", "#.#.#.#:#"},
	}
	for _, c := range cases {
		if got := Normalize(c.in); got != c.want {
			t.Errorf("Normalize(%q) = %q, want %q", c.in, got, c.want)
		}
	}
}

// TestNormalizeSubstringPreserved is the soundness property the postings
// section rests on: if a fragment occurs inside a token, the normalized
// fragment occurs inside the normalized token. Without it a vocabulary
// lookup could skip a block that matches.
func TestNormalizeSubstringPreserved(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	alphabet := []byte("abcdefgxyz0123456789ABCDEFXYZ.:-_/+#!%")
	for iter := 0; iter < 5000; iter++ {
		n := 1 + rng.Intn(24)
		tok := make([]byte, n)
		for i := range tok {
			tok[i] = alphabet[rng.Intn(len(alphabet))]
		}
		lo := rng.Intn(n)
		hi := lo + 1 + rng.Intn(n-lo)
		frag := string(tok[lo:hi])
		nt, nf := Normalize(string(tok)), Normalize(frag)
		if !strings.Contains(nt, nf) {
			t.Fatalf("normalization broke substring containment: token %q -> %q, fragment %q -> %q",
				tok, nt, frag, nf)
		}
	}
}

// TestFilterableMatchesExclusion checks the two sides of the volatile
// rule agree: a fragment the planner considers postings-filterable must
// never normalize to a shape the scanner would exclude from the
// vocabulary. (If they disagreed, a filterable fragment could hide
// inside an excluded token and the index would skip a matching block.)
func TestFilterableMatchesExclusion(t *testing.T) {
	for _, s := range []string{"", "#", "1234", "....", "1.2.3", "-", "a0f", "::"} {
		nf := Normalize(s)
		if Filterable(nf) {
			t.Errorf("%q (normal form %q) should not be filterable", s, nf)
		}
		if !pureVolatile(nf) {
			t.Errorf("%q (normal form %q) should be excluded from the vocabulary", s, nf)
		}
	}
	for _, s := range []string{"ERROR", "zz", "req-42", "x1234"} {
		nf := Normalize(s)
		if !Filterable(nf) {
			t.Errorf("%q (normal form %q) should be filterable", s, nf)
		}
	}
}

// TestBloomNoFalseNegatives: every gram inserted into a block's bloom
// must test positive — a false negative would skip a matching block.
func TestBloomNoFalseNegatives(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for iter := 0; iter < 50; iter++ {
		grams := make(map[uint64]struct{})
		for i, n := 0, 1+rng.Intn(500); i < n; i++ {
			grams[rng.Uint64()] = struct{}{}
		}
		// Unsaturated and budget-squeezed filters alike must hold every
		// inserted gram: the budget may only raise the false-positive
		// rate, never create a false negative.
		for _, budget := range []int{1 << 20, 64, 16} {
			nbits, k, bits := buildBloom(grams, budget)
			if nbits == 0 || k == 0 {
				t.Fatalf("non-empty gram set produced an empty bloom (budget %d)", budget)
			}
			if int(nbits) > 8*budget && nbits != 64 {
				t.Fatalf("bloom of %d bits ignored its %d-byte budget", nbits, budget)
			}
			for h := range grams {
				if !bloomTest(bits, nbits, k, h) {
					t.Fatalf("false negative: inserted gram %x not found (nbits=%d k=%d budget=%d)", h, nbits, k, budget)
				}
			}
		}
	}
	// Empty and nil sets mean "no filter, always admit".
	if nbits, k, bits := buildBloom(nil, 1<<20); nbits != 0 || k != 0 || bits != nil {
		t.Fatalf("nil gram set should produce no bloom, got nbits=%d k=%d", nbits, k)
	}
}

// buildIndex compresses the given raw blocks through the real scan ->
// build -> encode -> decode path and returns the decoded index plus each
// block's (lineOff, numLines) identity.
func buildIndex(t *testing.T, blocks []string) (*Index, [][2]int) {
	t.Helper()
	b := NewBuilder()
	var ids [][2]int
	lineOff := 0
	for _, raw := range blocks {
		numLines := strings.Count(raw, "\n")
		if numLines == 0 || !strings.HasSuffix(raw, "\n") {
			numLines++
		}
		b.Add(uint64(lineOff), numLines, 1<<20, ScanBlock([]byte(raw)))
		ids = append(ids, [2]int{lineOff, numLines})
		lineOff += numLines
	}
	sections := b.Sections()
	if len(blocks) > 0 && len(sections) == 0 {
		t.Fatalf("no sections emitted for %d blocks", len(blocks))
	}
	ix := DecodeSections(sections)
	if ix.ScanStats.Damaged != 0 {
		t.Fatalf("fresh sections decoded with damage: %+v", ix.ScanStats)
	}
	return ix, ids
}

func planVerdicts(t *testing.T, ix *Index, command string, ids [][2]int) (*Plan, []Verdict) {
	t.Helper()
	expr, err := query.Parse(command)
	if err != nil {
		t.Fatalf("parse %q: %v", command, err)
	}
	p := ix.NewPlan(expr)
	out := make([]Verdict, len(ids))
	for i, id := range ids {
		out[i] = p.Admits(uint64(id[0]), id[1])
	}
	return p, out
}

func TestPlanVerdicts(t *testing.T) {
	blocks := []string{
		"alpha ERROR omega\ncode 1234 end\n",
		"delta warn paths\nzeta eta\n",
		"theta iota ERROR\n",
	}
	ix, ids := buildIndex(t, blocks)
	if ix.Blooms == nil || ix.Postings == nil {
		t.Fatalf("expected both sections, got blooms=%v postings=%v", ix.Blooms != nil, ix.Postings != nil)
	}
	if ix.ScanStats.Blocks != 3 {
		t.Fatalf("Stats.Blocks = %d, want 3", ix.ScanStats.Blocks)
	}

	check := func(command string, want []Verdict, wantFilterable bool) {
		t.Helper()
		p, got := planVerdicts(t, ix, command, ids)
		if p.Filterable != wantFilterable {
			t.Fatalf("%q: Filterable = %v, want %v", command, p.Filterable, wantFilterable)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Errorf("%q: block %d verdict = %v, want %v (all: %v)", command, i, got[i], want[i], got)
			}
		}
	}

	// Single keyword: admitted exactly where it occurs.
	check("ERROR", []Verdict{Admit, SkipPostings, Admit}, true)
	// AND of keywords living in disjoint blocks: nothing can match.
	check("ERROR AND paths", []Verdict{SkipPostings, SkipPostings, SkipPostings}, true)
	// OR admits the union.
	check("ERROR OR paths", []Verdict{Admit, Admit, Admit}, true)
	check("omega OR zeta", []Verdict{Admit, Admit, SkipPostings}, true)
	// a NOT b filters by a only; the NOT side must not skip anything.
	check("ERROR NOT omega", []Verdict{Admit, SkipPostings, Admit}, true)
	// Pure-numeric fragment: postings cannot judge it (its normal form
	// is volatile), but the raw-gram blooms can.
	check("1234", []Verdict{Admit, SkipBlooms, SkipBlooms}, true)
	// Too short for grams and volatile: not filterable, admit everything.
	check("42", []Verdict{Admit, Admit, Admit}, false)

	if p := ix.NewPlan(nil); p.Filterable {
		t.Fatalf("nil expression should not be filterable")
	}
	var nilIx *Index
	if p := nilIx.NewPlan(nil); p.Filterable || p.Admits(0, 1) != Admit {
		t.Fatalf("nil index must admit everything")
	}
}

// Blocks the index has never heard of (damage can desynchronize the
// frame table from the index) must be admitted, not skipped.
func TestPlanAdmitsUnknownBlocks(t *testing.T) {
	ix, _ := buildIndex(t, []string{"alpha ERROR omega\n"})
	p := ix.NewPlan(mustParse(t, "zzzz"))
	if !p.Filterable {
		t.Fatalf("keyword should be filterable")
	}
	if v := p.Admits(999, 7); v != Admit {
		t.Fatalf("unknown block verdict = %v, want Admit", v)
	}
}

func mustParse(t *testing.T, command string) query.Expr {
	t.Helper()
	expr, err := query.Parse(command)
	if err != nil {
		t.Fatalf("parse %q: %v", command, err)
	}
	return expr
}

// A token whose normal form exceeds the vocabulary length cap marks its
// block always-admit in the postings section; fragments of the oversized
// token must still admit the block.
func TestOverlongTokenAlwaysAdmit(t *testing.T) {
	long := strings.Repeat("wxyz", 40) // 160 bytes, no hex letters: normal form stays 160
	blocks := []string{
		"prefix " + long + " suffix\n",
		"other stuff here\n",
	}
	ix, ids := buildIndex(t, blocks)
	if ix.Postings == nil {
		t.Fatalf("postings section missing")
	}
	// "yzwx" occurs only inside the oversized token, which is absent
	// from the vocabulary — the always-admit bit must save block 0.
	p, got := planVerdicts(t, ix, "yzwx", ids)
	if !p.UsedPostings {
		t.Fatalf("expected postings to participate")
	}
	if got[0] != Admit {
		t.Fatalf("block with overlong token got verdict %v, want Admit", got[0])
	}
	if got[1] == SkipPostings {
		t.Logf("block 1 skipped by postings as expected")
	}
}

// Vocabulary overflow must drop the whole postings section (an
// incomplete one would be unsound) while keeping the blooms.
func TestVocabOverflowDropsPostings(t *testing.T) {
	if testing.Short() {
		t.Skip("builds a 70k-token vocabulary")
	}
	var sb strings.Builder
	for i := 0; i < maxVocabTokens+16; i++ {
		// Letters g..z only: no hex folding, every token distinct.
		n := i
		sb.WriteString("w")
		for j := 0; j < 4; j++ {
			sb.WriteByte(byte('g' + n%20))
			n /= 20
		}
		sb.WriteString(" ")
	}
	sb.WriteString("\n")
	b := NewBuilder()
	b.Add(0, 1, 1<<20, ScanBlock([]byte(sb.String())))
	if !b.VocabOverflowed() {
		t.Fatalf("vocabulary did not overflow at %d tokens", maxVocabTokens+16)
	}
	sections := b.Sections()
	ix := DecodeSections(sections)
	if ix.Postings != nil {
		t.Fatalf("postings section present after vocabulary overflow")
	}
	if ix.Blooms == nil {
		t.Fatalf("bloom section lost with the postings")
	}
	if ix.ScanStats.Damaged != 0 {
		t.Fatalf("overflow output decoded with damage: %+v", ix.ScanStats)
	}
}

func TestScanSections(t *testing.T) {
	ix, _ := buildIndex(t, []string{"alpha beta\n", "gamma delta\n"})
	b := NewBuilder()
	b.Add(0, 1, 1<<20, ScanBlock([]byte("alpha beta\n")))
	b.Add(1, 1, 1<<20, ScanBlock([]byte("gamma delta\n")))
	sections := b.Sections()

	infos := ScanSections(sections)
	if len(infos) != 2 {
		t.Fatalf("ScanSections found %d sections, want 2", len(infos))
	}
	if infos[0].Kind != KindBlooms || infos[1].Kind != KindPostings {
		t.Fatalf("section kinds = %d,%d want %d,%d", infos[0].Kind, infos[1].Kind, KindBlooms, KindPostings)
	}
	total := 0
	for _, in := range infos {
		if !in.OK {
			t.Fatalf("fresh section %d not OK", in.Kind)
		}
		if in.Off != total {
			t.Fatalf("section %d at offset %d, want %d", in.Kind, in.Off, total)
		}
		total += in.Len
	}
	if total != len(sections) {
		t.Fatalf("sections cover %d of %d bytes", total, len(sections))
	}
	if got := ix.ScanStats.TotalBytes(); got != total {
		t.Fatalf("Stats.TotalBytes = %d, want %d", got, total)
	}
}

// Every single-byte corruption of the encoded sections must decode
// without panicking and without inventing sections; the resulting index
// may be smaller (damage) but never lies about what it decoded.
func TestDecodeSectionsCorruptionSweep(t *testing.T) {
	b := NewBuilder()
	b.Add(0, 2, 1<<20, ScanBlock([]byte("alpha ERROR omega\ncode 1234 end\n")))
	b.Add(2, 1, 1<<20, ScanBlock([]byte("delta warn paths\n")))
	sections := b.Sections()
	clean := DecodeSections(sections)
	if clean.Blooms == nil || clean.Postings == nil || clean.ScanStats.Damaged != 0 {
		t.Fatalf("clean decode incomplete: %+v", clean.ScanStats)
	}

	for off := 0; off < len(sections); off++ {
		for _, flip := range []byte{0x01, 0x80, 0xff} {
			mut := append([]byte(nil), sections...)
			mut[off] ^= flip
			ix := DecodeSections(mut) // must not panic
			healthy := 0
			if ix.Blooms != nil {
				healthy++
			}
			if ix.Postings != nil {
				healthy++
			}
			if healthy+ix.ScanStats.Damaged > 2 {
				t.Fatalf("offset %d flip %#x: %d healthy + %d damaged from 2 sections",
					off, flip, healthy, ix.ScanStats.Damaged)
			}
			if healthy == 2 && ix.ScanStats.Damaged == 0 {
				// Both sections survived a byte flip: only possible if
				// CRC32C collided, which it cannot for 1-bit..8-bit
				// changes within a section. The flip must have landed
				// past both payloads — impossible here, so fail loudly.
				t.Fatalf("offset %d flip %#x: corruption undetected", off, flip)
			}
		}
	}

	// Truncation at every length: never panic, never more sections than
	// fit.
	for cut := 0; cut < len(sections); cut++ {
		ix := DecodeSections(sections[:cut])
		if ix.Blooms != nil && cut < sectionHeaderSize {
			t.Fatalf("cut %d produced a bloom section from thin air", cut)
		}
		_ = ix.Empty()
	}
}

// Decoded sections must reject payloads that disagree with their own
// framing even when the CRC is recomputed to match — the strict decoder
// is the only thing standing between a hostile tail and the query path.
func TestDecodeRejectsMalformedPayloads(t *testing.T) {
	frame := func(kind byte, payload []byte) []byte {
		return appendSection(nil, kind, payload)
	}
	cases := []struct {
		name    string
		kind    byte
		payload []byte
	}{
		{"blooms/truncated-count", KindBlooms, appendUvarint(nil, 5)},
		{"blooms/huge-count", KindBlooms, appendUvarint(nil, 1<<40)},
		{"blooms/k-without-bits", KindBlooms, func() []byte {
			p := appendUvarint(nil, 1)
			p = appendUvarint(p, 0) // lineOff
			p = appendUvarint(p, 1) // numLines
			p = appendUvarint(p, 5) // k
			p = appendUvarint(p, 0) // nbits: k!=0 with nbits==0 is invalid
			return p
		}()},
		{"blooms/trailing-garbage", KindBlooms, func() []byte {
			p := appendUvarint(nil, 0)
			return append(p, 0xEE)
		}()},
		{"postings/huge-token", KindPostings, func() []byte {
			p := appendUvarint(nil, 1)
			p = appendUvarint(p, 0)
			p = appendUvarint(p, 1)
			p = append(p, 0)                   // alwaysAdmit bitmap
			p = appendUvarint(p, 1)            // one token
			p = appendUvarint(p, 1<<30)        // absurd length
			return append(p, []byte("abc")...) // but 3 bytes
		}()},
		{"postings/duplicate-block", KindPostings, func() []byte {
			p := appendUvarint(nil, 2)
			p = appendUvarint(p, 0)
			p = appendUvarint(p, 1)
			p = appendUvarint(p, 0) // same (lineOff, numLines) again
			p = appendUvarint(p, 1)
			p = append(p, 0)        // alwaysAdmit
			p = appendUvarint(p, 0) // no tokens
			return p
		}()},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			ix := DecodeSections(frame(c.kind, c.payload))
			if ix.Blooms != nil || ix.Postings != nil {
				t.Fatalf("malformed payload decoded as healthy")
			}
			if ix.ScanStats.Damaged != 1 {
				t.Fatalf("Damaged = %d, want 1", ix.ScanStats.Damaged)
			}
		})
	}

	// Unknown kind and future version are skipped silently (forward
	// compatibility), not damage.
	for _, sec := range [][]byte{
		frame(99, []byte("whatever")),
		func() []byte {
			s := frame(KindBlooms, appendUvarint(nil, 0))
			s[5] = 9 // future version; re-seal the header CRC
			resealHeader(s)
			return s
		}(),
	} {
		ix := DecodeSections(sec)
		if ix.ScanStats.Damaged != 0 || ix.Blooms != nil || ix.Postings != nil {
			t.Fatalf("unknown kind/version mishandled: %+v", ix.ScanStats)
		}
	}
}

// resealHeader recomputes a section header's CRC after a deliberate
// header edit, so tests can separate "unknown but intact" from damage.
func resealHeader(s []byte) {
	h := s[:sectionHeaderSize]
	binary.LittleEndian.PutUint32(h[14:18], crc32.Checksum(h[0:14], castagnoli))
}
