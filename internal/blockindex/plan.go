package blockindex

import (
	"sort"
	"strings"

	"loggrep/internal/bitset"
	"loggrep/internal/query"
)

// Verdict is one block's fate under a Plan.
type Verdict int

// Admit means the block must be searched; the skip verdicts name the
// index stage that proved no match is possible.
const (
	Admit Verdict = iota
	SkipPostings
	SkipBlooms
)

// Plan is a query's compiled view of the index: the postings verdict is
// a bitset computed once, the bloom verdict is evaluated per block at
// Admits time.
type Plan struct {
	// Filterable reports whether any index stage can judge the query;
	// when false every block is admitted and the caller should attribute
	// the query to the full-scan path.
	Filterable bool
	// UsedPostings and UsedBlooms record which stages actively filter.
	UsedPostings bool
	UsedBlooms   bool

	expr query.Expr
	ix   *Index
	// postAdmit is the postings-admitted set over ix.Postings.blocks;
	// nil when postings cannot judge the query.
	postAdmit *bitset.Set
	// fragGrams holds each bloom-probeable fragment's gram hashes,
	// precomputed so Admits is read-only and safe for concurrent query
	// workers.
	fragGrams map[string][]uint64
}

// NewPlan compiles a query expression against the index. A nil or empty
// index yields a plan that admits everything. The returned plan is
// immutable: Admits may be called from many goroutines.
func (ix *Index) NewPlan(e query.Expr) *Plan {
	p := &Plan{expr: e, ix: ix, fragGrams: make(map[string][]uint64)}
	if ix.Empty() || e == nil {
		return p
	}
	for _, s := range query.Searches(e) {
		for _, frag := range s.Fragments {
			if len(frag) >= GramLen {
				if _, ok := p.fragGrams[frag]; !ok {
					p.fragGrams[frag] = tokenGrams(nil, frag)
				}
			}
		}
	}
	if ix.Postings != nil {
		cache := make(map[string]*bitset.Set)
		set, filtered := p.postingsEval(e, cache)
		if filtered {
			p.postAdmit = set
			p.UsedPostings = true
		}
	}
	if ix.Blooms != nil && bloomFilterable(e) {
		p.UsedBlooms = true
	}
	p.Filterable = p.UsedPostings || p.UsedBlooms
	return p
}

// Admits returns the verdict for the block identified by (lineOff,
// numLines). Blocks unknown to a section are admitted by it: index and
// frame table can disagree after damage, and the unindexed side of a
// disagreement must be searched.
func (p *Plan) Admits(lineOff uint64, numLines int) Verdict {
	key := blockKey{lineOff: lineOff, numLines: uint64(numLines)}
	if p.postAdmit != nil {
		if i, ok := p.ix.Postings.byKey[key]; ok && !p.postAdmit.Test(i) {
			return SkipPostings
		}
	}
	if p.UsedBlooms {
		if i, ok := p.ix.Blooms.byKey[key]; ok {
			if !p.bloomEval(p.expr, &p.ix.Blooms.blocks[i]) {
				return SkipBlooms
			}
		}
	}
	return Admit
}

// postingsEval computes the blocks a subexpression may match, as a set
// over the postings block table, plus whether the subexpression actually
// constrained the set (an unconstrained subtree returns the full set).
func (p *Plan) postingsEval(e query.Expr, cache map[string]*bitset.Set) (*bitset.Set, bool) {
	ps := p.ix.Postings
	n := len(ps.blocks)
	switch x := e.(type) {
	case *query.And:
		// The more selective child runs first so an empty result
		// short-circuits the other side.
		hi, lo := x.L, x.R
		if query.SelectivityHint(lo) > query.SelectivityHint(hi) {
			hi, lo = lo, hi
		}
		ls, lf := p.postingsEval(hi, cache)
		if lf && !ls.Any() {
			return ls, true
		}
		rs, rf := p.postingsEval(lo, cache)
		return ls.And(rs), lf || rf
	case *query.Or:
		ls, lf := p.postingsEval(x.L, cache)
		rs, rf := p.postingsEval(x.R, cache)
		return ls.Or(rs), lf && rf
	case *query.Not:
		// Complementing an over-approximation is unsound; NOT admits all.
		return bitset.NewFull(n), false
	case *query.Search:
		return p.searchPostings(x, cache)
	}
	return bitset.NewFull(n), false
}

// searchPostings intersects the candidate blocks of a search leaf's
// filterable fragments, most selective (longest normalized) first.
func (p *Plan) searchPostings(s *query.Search, cache map[string]*bitset.Set) (*bitset.Set, bool) {
	ps := p.ix.Postings
	set := bitset.NewFull(len(ps.blocks))
	var norms []string
	for _, frag := range s.Fragments {
		if nf := Normalize(frag); Filterable(nf) {
			norms = append(norms, nf)
		}
	}
	if len(norms) == 0 {
		return set, false
	}
	sort.Slice(norms, func(i, j int) bool { return len(norms[i]) > len(norms[j]) })
	for _, nf := range norms {
		set.And(p.fragmentBlocks(nf, cache))
		if !set.Any() {
			break
		}
	}
	return set, true
}

// fragmentBlocks unions the posting bitmaps of every vocabulary token
// containing the normalized fragment, plus the always-admit blocks
// (their vocabulary rows are incomplete).
func (p *Plan) fragmentBlocks(nf string, cache map[string]*bitset.Set) *bitset.Set {
	if set, ok := cache[nf]; ok {
		return set
	}
	ps := p.ix.Postings
	set := bitset.New(len(ps.blocks))
	for i := range ps.tokens {
		if strings.Contains(ps.tokens[i].tok, nf) {
			orBitmap(set, ps.tokens[i].bits)
		}
	}
	orBitmap(set, ps.alwaysAdmit)
	cache[nf] = set
	return set
}

func orBitmap(set *bitset.Set, bits []byte) {
	n := set.Len()
	for i := 0; i < n; i++ {
		if bitmapTest(bits, i) {
			set.Set(i)
		}
	}
}

// bloomFilterable reports whether the expression has a bloom-probeable
// fragment in a positive position.
func bloomFilterable(e query.Expr) bool {
	switch x := e.(type) {
	case *query.And:
		return bloomFilterable(x.L) || bloomFilterable(x.R)
	case *query.Or:
		return bloomFilterable(x.L) && bloomFilterable(x.R)
	case *query.Not:
		return false
	case *query.Search:
		for _, frag := range x.Fragments {
			if len(frag) >= GramLen {
				return true
			}
		}
	}
	return false
}

// bloomEval decides whether one block's filter can admit the expression.
func (p *Plan) bloomEval(e query.Expr, bb *bloomBlock) bool {
	switch x := e.(type) {
	case *query.And:
		return p.bloomEval(x.L, bb) && p.bloomEval(x.R, bb)
	case *query.Or:
		return p.bloomEval(x.L, bb) || p.bloomEval(x.R, bb)
	case *query.Not:
		return true
	case *query.Search:
		if bb.k == 0 || bb.nbits == 0 {
			return true // block had no filter (gram overflow)
		}
		for _, frag := range x.Fragments {
			if len(frag) < GramLen {
				continue
			}
			for _, h := range p.fragGrams[frag] {
				if !bloomTest(bb.bits, bb.nbits, bb.k, h) {
					return false
				}
			}
		}
		return true
	}
	return true
}
