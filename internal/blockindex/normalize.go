package blockindex

import "strings"

// Marker is the byte a maximal numeric/hex run collapses to under
// Normalize. It is a printable byte for debuggability; a literal '#' in
// raw log text merely aliases with collapsed runs, which can only cause
// extra admits, never a missed match.
const Marker = '#'

// numericByte reports whether b belongs to the collapse class: decimal
// digits and hex letters of either case. Runs of these bytes are what
// varies between instances of one token shape (counters, sizes, ids,
// hashes, address octets), so collapsing them folds the instances
// together.
func numericByte(b byte) bool {
	return b >= '0' && b <= '9' || b >= 'a' && b <= 'f' || b >= 'A' && b <= 'F'
}

// volatileByte reports whether a byte of a normalized token carries no
// shape information beyond "some value with separators": the collapse
// marker and the separator punctuation common inside numbers, ids, IPs,
// paths and timestamps.
func volatileByte(b byte) bool {
	switch b {
	case Marker, '.', ':', '-', '/', '_', '+':
		return true
	}
	return false
}

// Normalize collapses every maximal run of numeric/hex bytes in s to a
// single Marker byte. The transform is context-free, which gives the
// property the index relies on: if f is a substring of t, Normalize(f)
// is a substring of Normalize(t). (The leading and trailing runs of f
// may be truncated pieces of longer runs in t, but a truncated run still
// collapses to the same single marker.)
func Normalize(s string) string {
	i := 0
	for i < len(s) && !numericByte(s[i]) {
		i++
	}
	if i == len(s) {
		return s
	}
	var b strings.Builder
	b.Grow(len(s))
	b.WriteString(s[:i])
	for i < len(s) {
		if numericByte(s[i]) {
			b.WriteByte(Marker)
			for i < len(s) && numericByte(s[i]) {
				i++
			}
			continue
		}
		b.WriteByte(s[i])
		i++
	}
	return b.String()
}

// Filterable reports whether a normalized fragment can consult the
// postings table: it must keep at least one non-volatile byte, because
// the vocabulary deliberately omits tokens whose normal form is pure
// marker-and-separator noise (every block would post them).
func Filterable(normalized string) bool {
	for i := 0; i < len(normalized); i++ {
		if !volatileByte(normalized[i]) {
			return true
		}
	}
	return false
}

// pureVolatile reports whether every byte of a normalized token is
// volatile — such tokens (plain numbers, IPs, hex ids, timestamps) are
// excluded from the postings vocabulary. Filterable fragments can never
// hide inside them: a fragment with a non-volatile byte forces the same
// byte into any containing token's normal form.
func pureVolatile(normalized string) bool { return !Filterable(normalized) }
