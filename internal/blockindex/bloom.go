package blockindex

// Per-block bloom filter over raw token 4-grams. Sizing is budgeted, not
// proportional: a block's filter never exceeds 1/bloomBudgetDenom of the
// block's compressed frame, because unique high-entropy values (trace
// ids, request ids) would otherwise make the gram set — and hence the
// filter — rival the compressed data itself. Within the budget the
// filter gets bloomBitsPerGram bits per distinct gram and k probes,
// giving a per-gram false-positive rate of (1-e^(-k·n/m))^k ≈ 2.2% when
// unsaturated; past the budget every gram is still inserted (soundness
// is non-negotiable), the filter just runs denser with k scaled down to
// the density optimum ln2·m/n. A fragment of length L probes L-3 grams
// and is admitted only if all of them hit, so even a saturated filter's
// compound rate drops geometrically with fragment length (see DESIGN.md
// for the full math).
const (
	GramLen          = 4
	bloomBitsPerGram = 8
	bloomK           = 5

	// bloomBudgetDenom caps a block's filter at 1/32 (~3%) of the
	// block's compressed frame; minBloomBudgetBytes keeps tiny blocks'
	// filters functional (tiny blocks are also cheap to scan, so a
	// saturated filter there costs little).
	bloomBudgetDenom    = 32
	minBloomBudgetBytes = 64

	// maxBloomBits caps one block's filter (1 MiB of bits). Past the cap
	// the filter stays sound, just denser.
	maxBloomBits = 1 << 23

	// maxBlockGrams bounds the per-block distinct-gram set tracked during
	// scanning; blocks that exceed it (effectively random content) get no
	// bloom and are always admitted.
	maxBlockGrams = 1 << 21
)

const (
	fnvOffset64 = 14695981039346656037
	fnvPrime64  = 1099511628211
)

// gramHash is FNV-1a over one 4-byte gram.
func gramHash(b0, b1, b2, b3 byte) uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(b0)) * fnvPrime64
	h = (h ^ uint64(b1)) * fnvPrime64
	h = (h ^ uint64(b2)) * fnvPrime64
	h = (h ^ uint64(b3)) * fnvPrime64
	return h
}

// tokenGrams appends the hashes of every 4-gram of tok to dst.
func tokenGrams(dst []uint64, tok string) []uint64 {
	for i := 0; i+GramLen <= len(tok); i++ {
		dst = append(dst, gramHash(tok[i], tok[i+1], tok[i+2], tok[i+3]))
	}
	return dst
}

// bloomSize picks the bit count for n distinct grams under a byte
// budget: bloomBitsPerGram bits each, clamped to the budget, rounded up
// to a whole number of bytes, at least 64 bits so an empty or tiny
// block still rejects probes, capped at maxBloomBits.
func bloomSize(n, budgetBytes int) uint32 {
	bits := n * bloomBitsPerGram
	if b := budgetBytes * 8; bits > b {
		bits = b
	}
	if bits < 64 {
		bits = 64
	}
	if bits > maxBloomBits {
		bits = maxBloomBits
	}
	return uint32((bits + 7) &^ 7)
}

// bloomProbes picks k for n grams in m bits: the density optimum
// ln2·m/n (~0.693), clamped to [1, bloomK]. An unsaturated filter
// (m = 8n) lands on bloomK; a budget-squeezed one steps down so the
// filter does not fill solid.
func bloomProbes(n int, nbits uint32) uint8 {
	if n == 0 {
		return bloomK
	}
	k := (uint64(nbits)*693 + uint64(n)*500) / (uint64(n) * 1000)
	if k < 1 {
		return 1
	}
	if k > bloomK {
		return bloomK
	}
	return uint8(k)
}

// bloomSet sets k positions for hash h in a filter of nbits bits, via
// double hashing (the second hash is forced odd so its cycle covers the
// whole table when nbits is a power of two, and is harmlessly imperfect
// otherwise).
func bloomSet(bits []byte, nbits uint32, k uint8, h uint64) {
	h1, h2 := h, (h>>33)|1
	for i := uint64(0); i < uint64(k); i++ {
		pos := (h1 + i*h2) % uint64(nbits)
		bits[pos/8] |= 1 << (pos % 8)
	}
}

// bloomTest reports whether hash h may have been inserted. k and nbits
// come from the decoded section, so both are validated by the caller.
func bloomTest(bits []byte, nbits uint32, k uint8, h uint64) bool {
	h1, h2 := h, (h>>33)|1
	for i := uint64(0); i < uint64(k); i++ {
		pos := (h1 + i*h2) % uint64(nbits)
		if bits[pos/8]&(1<<(pos%8)) == 0 {
			return false
		}
	}
	return true
}

// buildBloom materializes a filter from a distinct-gram set within a
// byte budget. A nil map (scan overflow) yields no filter: nbits 0
// means "always admit".
func buildBloom(grams map[uint64]struct{}, budgetBytes int) (nbits uint32, k uint8, bits []byte) {
	if grams == nil {
		return 0, 0, nil
	}
	nbits = bloomSize(len(grams), budgetBytes)
	k = bloomProbes(len(grams), nbits)
	bits = make([]byte, nbits/8)
	for h := range grams {
		bloomSet(bits, nbits, k, h)
	}
	return nbits, k, bits
}
