package archive

import (
	"context"
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"loggrep/internal/blockindex"
	"loggrep/internal/core"
	"loggrep/internal/liveops"
	"loggrep/internal/obsv"
	"loggrep/internal/query"
	"loggrep/internal/rtpattern"
)

// BlockError describes one damaged region of an archive: a block whose
// checksum or decode failed, or a line range lost to header corruption or
// truncation. Queries report these alongside partial results instead of
// failing outright.
type BlockError struct {
	// Block is the ordinal of the damaged region among the archive's
	// frames (best effort when the frame itself was unreadable).
	Block int
	// FirstLine is the global line number of the first affected line.
	FirstLine int
	// NumLines is the number of affected lines; 0 means the extent is
	// unknown (e.g. the archive ends mid-frame with no terminator).
	NumLines int
	// Err is the underlying cause.
	Err error
}

// Error describes the damaged region: block, line range, and cause.
func (e *BlockError) Error() string {
	if e.NumLines > 0 {
		return fmt.Sprintf("block %d (lines %d-%d): %v", e.Block, e.FirstLine, e.FirstLine+e.NumLines-1, e.Err)
	}
	return fmt.Sprintf("block %d (line %d, extent unknown): %v", e.Block, e.FirstLine, e.Err)
}

// Unwrap returns the underlying cause for errors.Is/As.
func (e *BlockError) Unwrap() error { return e.Err }

// block is one opened archive block.
type block struct {
	idx      int // ordinal among the archive's frames
	box      []byte
	meta     blockMeta
	lineOff  int // global line number of the block's first line
	hasCRC   bool
	crc      uint32 // expected payload CRC32C (v2 only)
	storeMu  sync.Mutex
	store    *core.Store
	storeErr error
}

// fail builds the block's quarantine record.
func (b *block) fail(err error) *BlockError {
	return &BlockError{Block: b.idx, FirstLine: b.lineOff, NumLines: b.meta.numLines, Err: err}
}

// openStore lazily opens the block's CapsuleBox, verifying the payload
// checksum first. Verification happens here — not at Open — so that
// queries which skip the block via its stamp never pay for it, and the
// result (store or quarantine error) is latched either way. Cancellation
// and read-hook errors are NOT latched: an interrupted open must not
// quarantine a healthy block, so the next caller retries from scratch.
func (b *block) openStore(ctx context.Context, hook core.ReadHook) (*core.Store, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	b.storeMu.Lock()
	defer b.storeMu.Unlock()
	if b.store == nil && b.storeErr == nil {
		if hook != nil {
			// The block open is a real read (checksum + metadata decode);
			// gate it like one, without latching the hook's verdict.
			if err := hook(ctx); err != nil {
				return nil, err
			}
		}
		if b.hasCRC && crc32.Checksum(b.box, castagnoli) != b.crc {
			b.storeErr = b.fail(ErrChecksum)
		} else if st, err := core.Open(b.box, core.QueryOptions{ReadHook: hook}); err != nil {
			b.storeErr = b.fail(err)
		} else {
			b.store = st
		}
	}
	return b.store, b.storeErr
}

// Archive is an opened multi-block archive. It is safe for concurrent
// use: block stores synchronize internally.
type Archive struct {
	blocks   []*block
	damage   []BlockError // line ranges lost to structural damage, by FirstLine
	numLines int
	rawBytes int
	// blocksSkipped counts blocks eliminated by block stamps across all
	// queries (harness statistic). Atomic: queries may run concurrently.
	blocksSkipped atomic.Int64

	// index is the block-skipping index decoded from the sections after
	// the terminator; nil or empty when the archive has none (old writer,
	// -no-index, damage). indexDisabled turns it off at query time.
	index                *blockindex.Index
	indexDisabled        atomic.Bool
	indexSkippedPostings atomic.Int64
	indexSkippedBlooms   atomic.Int64

	hookMu   sync.Mutex
	readHook core.ReadHook
}

// SetReadHook installs (or clears, with nil) a read hook gating every
// block open and capsule payload fetch — the faultinject seam for latency
// and stall injection. It applies to already-opened blocks too.
func (a *Archive) SetReadHook(h core.ReadHook) {
	a.hookMu.Lock()
	a.readHook = h
	a.hookMu.Unlock()
	for _, b := range a.blocks {
		b.storeMu.Lock()
		st := b.store
		b.storeMu.Unlock()
		if st != nil {
			st.SetReadHook(h)
		}
	}
}

// hook returns the current read hook.
func (a *Archive) hook() core.ReadHook {
	a.hookMu.Lock()
	defer a.hookMu.Unlock()
	return a.readHook
}

// SkippedBlocks reports how many blocks stamp filtering eliminated
// across all queries so far.
func (a *Archive) SkippedBlocks() int { return int(a.blocksSkipped.Load()) }

// Open parses an archive produced by Writer/Compress, either format.
//
// For v2 archives every frame header is checksum-verified up front; frames
// with damaged headers are skipped by re-synchronizing on the next valid
// header, and the lost line ranges are recorded (see Damage) rather than
// failing the open. Payload checksums are deferred to first use. Open
// itself only fails when the data is not an archive at all.
func Open(data []byte) (*Archive, error) {
	switch {
	case hasMagic(data, Magic):
		return openV2(data)
	case hasMagic(data, MagicV1):
		return openV1(data)
	}
	return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
}

func openV2(data []byte) (*Archive, error) {
	a := &Archive{}
	var causes []error // structural faults in stream order
	pos := len(Magic)
	expect := 0 // line number the next in-order frame should start at
	termLines := -1
	tailStart := -1 // byte offset of the index tail, past the terminator
	for {
		if len(data)-pos < headerSize {
			causes = append(causes, fmt.Errorf("%w: archive ends mid-frame at offset %d (no terminator)", ErrCorrupt, pos))
			break
		}
		h, ok := decodeHeader(data[pos : pos+headerSize])
		if !ok {
			np, nh, found := resync(data, pos+1, expect)
			if !found {
				causes = append(causes, fmt.Errorf("%w: frame header damaged at offset %d; no later frame found", ErrCorrupt, pos))
				break
			}
			causes = append(causes, fmt.Errorf("%w: frame header damaged at offset %d; resynchronized at offset %d", ErrCorrupt, pos, np))
			pos, h = np, nh
		}
		if h.terminator() {
			termLines = h.lineOff
			tailStart = pos + headerSize
			break
		}
		if h.boxLen > len(data)-pos-headerSize {
			// The header survived, so the lost extent is known exactly:
			// advancing expect past the block makes finishV2's coverage scan
			// emit one damage entry for it, paired with this cause.
			causes = append(causes, fmt.Errorf("%w: frame payload truncated at offset %d", ErrCorrupt, pos))
			expect = h.lineOff + h.meta.numLines
			break
		}
		a.blocks = append(a.blocks, &block{
			box:     data[pos+headerSize : pos+headerSize+h.boxLen],
			meta:    h.meta,
			lineOff: h.lineOff,
			hasCRC:  true,
			crc:     h.payloadCRC,
		})
		expect = h.lineOff + h.meta.numLines
		pos += headerSize + h.boxLen
	}
	a.finishV2(termLines, expect, causes)
	if tailStart >= 0 && tailStart <= len(data) {
		// Index sections live past the terminator. Decoding never fails —
		// damage drops the affected section and queries scan every block.
		a.index = blockindex.DecodeSections(data[tailStart:])
	}
	return a, nil
}

// finishV2 reconciles the parsed blocks against the line space. Headers
// carry absolute line offsets, so surviving blocks keep their pristine
// global line numbers even when earlier frames were lost or frames arrive
// out of order; whatever the block set does not cover becomes damage.
func (a *Archive) finishV2(termLines, expect int, causes []error) {
	sort.SliceStable(a.blocks, func(i, j int) bool { return a.blocks[i].lineOff < a.blocks[j].lineOff })

	total := max(termLines, expect)
	kept := a.blocks[:0]
	covered := 0
	for _, b := range a.blocks {
		if b.lineOff < covered {
			// Overlaps a line range another block already covers; a frame
			// duplicated (or a resync false positive). Quarantine it.
			a.damage = append(a.damage, BlockError{FirstLine: b.lineOff, NumLines: b.meta.numLines,
				Err: fmt.Errorf("%w: block overlaps lines already covered", ErrCorrupt)})
			continue
		}
		kept = append(kept, b)
		covered = b.lineOff + b.meta.numLines
		if covered > total {
			total = covered
		}
	}
	a.blocks = kept
	a.numLines = total

	// Turn uncovered line ranges into damage entries, pairing them with
	// the structural causes in order (stream order and line order agree
	// for in-order archives).
	covered = 0
	for _, b := range a.blocks {
		if b.lineOff > covered {
			a.damage = append(a.damage, BlockError{FirstLine: covered, NumLines: b.lineOff - covered, Err: popCause(&causes)})
		}
		covered = b.lineOff + b.meta.numLines
	}
	if total > covered {
		a.damage = append(a.damage, BlockError{FirstLine: covered, NumLines: total - covered, Err: popCause(&causes)})
	}
	// Leftover causes lost no known lines (e.g. a missing terminator after
	// the last block); keep them as extent-unknown damage.
	for _, c := range causes {
		a.damage = append(a.damage, BlockError{FirstLine: total, NumLines: 0, Err: c})
	}

	sort.SliceStable(a.damage, func(i, j int) bool { return a.damage[i].FirstLine < a.damage[j].FirstLine })
	for i, b := range a.blocks {
		b.idx = i
		a.rawBytes += b.meta.rawBytes
	}
	// Damage ordinals count the blocks preceding each lost range.
	bi := 0
	for i := range a.damage {
		for bi < len(a.blocks) && a.blocks[bi].lineOff < a.damage[i].FirstLine {
			bi++
		}
		a.damage[i].Block = bi + countDamageBefore(a.damage[:i], a.damage[i].FirstLine)
	}
}

func popCause(causes *[]error) error {
	if len(*causes) == 0 {
		return fmt.Errorf("%w: lines lost to frame damage", ErrCorrupt)
	}
	c := (*causes)[0]
	*causes = (*causes)[1:]
	return c
}

func countDamageBefore(d []BlockError, line int) int {
	n := 0
	for i := range d {
		if d[i].FirstLine < line {
			n++
		}
	}
	return n
}

// resync scans forward from pos for a frame header whose checksum
// verifies and whose fields are self-consistent, so one damaged header
// costs one block, not the archive's tail. The extra field checks guard
// against the 2^-32 chance of payload bytes masquerading as a header.
func resync(data []byte, pos, expectLine int) (int, frameHeader, bool) {
	for ; pos+headerSize <= len(data); pos++ {
		h, ok := decodeHeader(data[pos : pos+headerSize])
		if !ok {
			continue
		}
		if h.terminator() {
			if h.meta.numLines == 0 && h.meta.rawBytes == 0 && h.lineOff >= expectLine {
				return pos, h, true
			}
			continue
		}
		if h.meta.numLines >= 1 && h.lineOff >= expectLine && h.boxLen <= len(data)-pos-headerSize {
			return pos, h, true
		}
	}
	return 0, frameHeader{}, false
}

// openV1 parses the legacy checksum-free format. Structural damage is not
// recoverable without checksummed headers, so any parse fault fails the
// open, exactly as v1 readers always did.
func openV1(data []byte) (*Archive, error) {
	a := &Archive{}
	pos := len(MagicV1)
	for {
		boxLen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad frame length", ErrCorrupt)
		}
		pos += n
		if boxLen == 0 {
			break // terminator
		}
		if uint64(len(data)-pos) < boxLen {
			return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		b := &block{idx: len(a.blocks), box: data[pos : pos+int(boxLen)], lineOff: a.numLines}
		pos += int(boxLen)
		uv := func() (uint64, error) {
			v, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("%w: bad frame meta", ErrCorrupt)
			}
			pos += n
			return v, nil
		}
		numLines, err := uv()
		if err != nil {
			return nil, err
		}
		rawBytes, err := uv()
		if err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: bad frame stamp", ErrCorrupt)
		}
		mask := data[pos]
		pos++
		maxLen, err := uv()
		if err != nil {
			return nil, err
		}
		if numLines > maxFrameLines || rawBytes > maxFrameBytes || maxLen > maxFrameBytes {
			return nil, fmt.Errorf("%w: implausible frame meta", ErrCorrupt)
		}
		b.meta = blockMeta{
			numLines: int(numLines),
			rawBytes: int(rawBytes),
			stamp:    rtpattern.Stamp{TypeMask: mask, MaxLen: int(maxLen)},
		}
		a.numLines += b.meta.numLines
		a.rawBytes += b.meta.rawBytes
		a.blocks = append(a.blocks, b)
	}
	return a, nil
}

// maxFrameLines/maxFrameBytes bound v1 frame metadata, which carries no
// checksum: a corrupt varint must not become a giant line count.
const (
	maxFrameLines = 1 << 40
	maxFrameBytes = 1 << 40
)

// NumBlocks returns the count of readable blocks.
func (a *Archive) NumBlocks() int { return len(a.blocks) }

// NumLines returns the total entry count, damaged ranges included, so
// surviving lines keep the same global numbers as in a pristine archive.
func (a *Archive) NumLines() int { return a.numLines }

// RawBytes returns the total raw size of the readable blocks.
func (a *Archive) RawBytes() int { return a.rawBytes }

// Damage returns the line ranges lost to structural damage found at Open:
// damaged frame headers, truncation, or a missing terminator. Blocks whose
// payload checksums fail are not listed here — payloads are verified
// lazily and surface through Result.Damaged, Entry errors, or Verify.
func (a *Archive) Damage() []BlockError {
	out := make([]BlockError, len(a.damage))
	copy(out, a.damage)
	return out
}

// Result is an archive query result with global line numbers.
type Result struct {
	Lines   []int
	Entries []string
	// Damaged lists blocks and line ranges that could not be searched;
	// Lines/Entries are complete for every range not listed here. Empty on
	// a healthy archive.
	Damaged []BlockError
	// Partial marks a result cut short by an exhausted query budget:
	// every returned entry is a verified exact match, but blocks past the
	// cut were not searched (and a mid-block cut may omit later matches
	// within it). Distinct from Damaged — the data is fine, the query just
	// ran out of budget.
	Partial bool
	// PartialReason says which cap stopped the query.
	PartialReason string
}

// mayMatch applies the block stamp: every fragment of every search string
// in the expression must be admissible for the block to need a look. A NOT
// operand cannot prune (its entries may contain anything).
func mayMatch(e query.Expr, st rtpattern.Stamp) bool {
	switch x := e.(type) {
	case *query.And:
		return mayMatch(x.L, st) && mayMatch(x.R, st)
	case *query.Or:
		return mayMatch(x.L, st) || mayMatch(x.R, st)
	case *query.Not:
		return true
	case *query.Search:
		for _, frag := range x.Fragments {
			if !st.Admits(frag) {
				return false
			}
		}
		return true
	}
	return true
}

// Query runs a command over all blocks, parallel across workers, and
// merges results in global line order. Damaged blocks do not fail the
// query: their line ranges are reported in Result.Damaged and every other
// block's matches are returned. Only an unparsable command is an error.
func (a *Archive) Query(command string, workers int) (*Result, error) {
	return a.queryTraced(context.Background(), command, workers, nil, nil)
}

// QueryContext runs a command like Query under a context and a work
// budget. Cancellation or deadline expiry aborts the query and returns the
// context's error. The budget (zero fields = unlimited) is shared across
// all blocks; when it runs out the query returns what the searched blocks
// matched with Result.Partial set — a degraded answer, not an error.
func (a *Archive) QueryContext(ctx context.Context, command string, workers int, budget core.Budget) (*Result, error) {
	return a.queryTraced(ctx, command, workers, core.NewBudgetState(budget), nil)
}

// QueryTraced runs a command like Query and additionally records a trace:
// one span per searched block (attrs: block ordinal, matches, payloads
// decompressed) plus trace-level totals for blocks searched, skipped by
// block stamps, and damaged. Block spans are appended as blocks finish, so
// their order varies across runs; counter totals are deterministic.
func (a *Archive) QueryTraced(command string, workers int) (*Result, *obsv.Trace, error) {
	return a.QueryTracedContext(context.Background(), command, workers, core.Budget{})
}

// QueryTracedContext is QueryContext with a trace, see QueryTraced.
func (a *Archive) QueryTracedContext(ctx context.Context, command string, workers int, budget core.Budget) (*Result, *obsv.Trace, error) {
	tr := obsv.NewTrace("archive-query")
	res, err := a.queryTraced(ctx, command, workers, core.NewBudgetState(budget), tr)
	return res, tr, err
}

func (a *Archive) queryTraced(ctx context.Context, command string, workers int, bs *core.BudgetState, tr *obsv.Trace) (*Result, error) {
	t0 := time.Now()
	expr, err := query.Parse(command)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	mArchiveQueries.Inc()
	hook := a.hook()
	// Compile the query against the block-skipping index; a nil plan means
	// full scan (index absent, damaged, disabled, or the query has no
	// token-filterable fragment) — never wrong, only slower.
	var plan *blockindex.Plan
	if !a.indexDisabled.Load() {
		if p := a.index.NewPlan(expr); p.Filterable {
			plan = p
		}
	}
	if plan == nil {
		mArchiveIndexUnusable.Inc()
	}
	// Live-ops progress: the block plan is the denominator; workers bump
	// searched/skipped as they go and the core engine publishes scan
	// bytes through the same context. All calls are nil-safe no-ops for
	// unregistered queries.
	prog := liveops.ProgressFrom(ctx)
	prog.SetBlocksTotal(int64(len(a.blocks)))
	prog.SetStage(liveops.StageFilter)
	var skipped, searched, skippedPost, skippedBloom atomic.Int64
	type blockRes struct {
		idx int
		res *core.Result
		err error
	}
	var (
		wg   sync.WaitGroup
		work = make(chan int)
		out  = make(chan blockRes, len(a.blocks))
	)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				// A cancelled or out-of-budget query drains the remaining
				// work without touching further blocks; the dispatcher
				// stops feeding, this stops in-flight backlog.
				if ctx.Err() != nil || bs.Err() != nil {
					continue
				}
				b := a.blocks[idx]
				if plan != nil {
					// Postings then blooms, before the stamp and long before
					// any capsule decompression.
					switch plan.Admits(uint64(b.lineOff), b.meta.numLines) {
					case blockindex.SkipPostings:
						a.indexSkippedPostings.Add(1)
						mArchiveIndexSkippedPostings.Inc()
						skippedPost.Add(1)
						prog.AddBlocksSkipped(1)
						continue
					case blockindex.SkipBlooms:
						a.indexSkippedBlooms.Add(1)
						mArchiveIndexSkippedBlooms.Inc()
						skippedBloom.Add(1)
						prog.AddBlocksSkipped(1)
						continue
					}
					mArchiveIndexAdmitted.Inc()
				}
				if !mayMatch(expr, b.meta.stamp) {
					a.blocksSkipped.Add(1)
					mArchiveBlocksSkipped.Inc()
					skipped.Add(1)
					prog.AddBlocksSkipped(1)
					continue
				}
				searched.Add(1)
				mArchiveBlocksSearched.Inc()
				prog.AddBlocksSearched(1)
				span := tr.StartSpan("block").Attr("block", int64(idx))
				tb := time.Now()
				st, err := b.openStore(ctx, hook)
				if err != nil {
					if core.IsInterrupt(err) {
						// Not damage: the open was interrupted, the block is
						// (as far as anyone knows) healthy. ctx.Err() after
						// the join reports the cancellation; a budget stop
						// surfaces as Partial.
						span.Attr("interrupted", 1).End()
						continue
					}
					span.Attr("damaged", 1).End()
					out <- blockRes{idx: idx, err: err}
					continue
				}
				var (
					res *core.Result
					btr *obsv.Trace
				)
				if tr != nil {
					// Traced archive queries trace each block too, so the
					// engine's scan and stamp counters survive onto the
					// block span (and into wide events built from it).
					res, btr, err = st.QueryTracedContext(ctx, command, bs)
				} else {
					res, err = st.QueryContext(ctx, command, bs)
				}
				mArchiveBlockNS.Observe(time.Since(tb).Nanoseconds())
				switch {
				case err == nil:
					if plan != nil && len(res.Lines) == 0 {
						// The index admitted a block with no match — an upper
						// bound on its false-positive rate (the block may have
						// been admitted for sound reasons, e.g. a NOT branch).
						mArchiveIndexFalseAdmit.Inc()
					}
					span.Attr("matches", int64(len(res.Lines))).
						Attr("decompressions", int64(res.Decompressions))
					liftEngineAttrs(span, btr)
					if res.Partial {
						span.Attr("partial", 1)
					}
					span.End()
					out <- blockRes{idx: idx, res: res}
				case core.IsInterrupt(err):
					span.Attr("interrupted", 1).End()
				default:
					span.Attr("damaged", 1).End()
					out <- blockRes{idx: idx, err: err}
				}
			}
		}()
	}
	for idx := range a.blocks {
		if ctx.Err() != nil || bs.Err() != nil {
			break
		}
		work <- idx
	}
	close(work)
	wg.Wait()
	close(out)

	if err := ctx.Err(); err != nil {
		mArchiveQueriesCancelled.Inc()
		return nil, err
	}

	res := &Result{Damaged: a.Damage()}
	byBlock := make([]*core.Result, len(a.blocks))
	for r := range out {
		if r.err != nil {
			res.Damaged = append(res.Damaged, *a.blocks[r.idx].asBlockError(r.err))
			continue
		}
		byBlock[r.idx] = r.res
	}

	for idx, br := range byBlock {
		if br == nil {
			continue
		}
		if br.Partial {
			res.Partial = true
			if res.PartialReason == "" {
				res.PartialReason = br.PartialReason
			}
		}
		off := a.blocks[idx].lineOff
		for i, line := range br.Lines {
			res.Lines = append(res.Lines, off+line)
			res.Entries = append(res.Entries, br.Entries[i])
		}
	}
	if err := bs.Err(); err != nil {
		res.Partial = true
		res.PartialReason = err.Error()
	}
	if res.Partial {
		mArchiveQueryPartial.Inc()
	}
	sort.SliceStable(res.Damaged, func(i, j int) bool { return res.Damaged[i].FirstLine < res.Damaged[j].FirstLine })
	tr.Attr("blocks", int64(len(a.blocks)))
	tr.Attr("blocks_searched", searched.Load())
	tr.Attr("blocks_skipped", skipped.Load())
	tr.Attr("blocks_skipped_postings", skippedPost.Load())
	tr.Attr("blocks_skipped_blooms", skippedBloom.Load())
	tr.Attr("damaged_regions", int64(len(res.Damaged)))
	tr.Attr("matches", int64(len(res.Lines)))
	if res.Partial {
		tr.Attr("partial", 1)
	}
	mArchiveQueryNS.Observe(time.Since(t0).Nanoseconds())
	return res, nil
}

// liftEngineAttrs sums the engine work counters from a block's inner query
// trace onto the archive-level block span, in a fixed key order so traced
// archive output stays deterministic.
func liftEngineAttrs(span *obsv.SpanCursor, btr *obsv.Trace) {
	if btr == nil {
		return
	}
	sums := map[string]int64{}
	for _, sp := range btr.Data().Spans {
		for _, a := range sp.Attrs {
			sums[a.Key] += a.Val
		}
	}
	for _, k := range []string{"stamp_admits", "stamp_skips", "capsule_scans", "scan_cache_hits", "bytes_scanned"} {
		if v, ok := sums[k]; ok {
			span.Attr(k, v)
		}
	}
}

// asBlockError normalizes a block failure: openStore already returns
// *BlockError; anything else (a query-time decode fault) gets wrapped.
func (b *block) asBlockError(err error) *BlockError {
	if be, ok := err.(*BlockError); ok {
		return be
	}
	return b.fail(err)
}

// Entry reconstructs one entry by its global line number. A line lost to
// damage returns a *BlockError describing the affected range.
func (a *Archive) Entry(line int) (string, error) {
	if line < 0 || line >= a.numLines {
		return "", fmt.Errorf("archive: line %d out of range", line)
	}
	for _, b := range a.blocks {
		if line >= b.lineOff && line < b.lineOff+b.meta.numLines {
			st, err := b.openStore(context.Background(), a.hook())
			if err != nil {
				return "", err
			}
			return st.ReconstructLine(line - b.lineOff)
		}
	}
	for i := range a.damage {
		d := a.damage[i]
		if d.NumLines > 0 && line >= d.FirstLine && line < d.FirstLine+d.NumLines {
			return "", &d
		}
	}
	return "", &BlockError{FirstLine: line, NumLines: 1, Err: fmt.Errorf("%w: line lost to frame damage", ErrCorrupt)}
}

// ReconstructAll restores the entire raw stream, block by block. It is
// strict: any damage — structural or payload — fails it. Use
// ReconstructPartial to salvage what survives.
func (a *Archive) ReconstructAll() ([]string, error) {
	if len(a.damage) > 0 {
		d := a.damage[0]
		return nil, &d
	}
	out := make([]string, 0, a.numLines)
	for _, b := range a.blocks {
		st, err := b.openStore(context.Background(), a.hook())
		if err != nil {
			return nil, err
		}
		lines, err := st.ReconstructAll()
		if err != nil {
			return nil, b.asBlockError(err)
		}
		out = append(out, lines...)
	}
	return out, nil
}

// ReconstructPartial restores every line that survives, in global line
// order, and reports the unrecoverable ranges. len(lines) equals NumLines
// minus the damaged lines; each BlockError gives the FirstLine/NumLines of
// a hole, so callers can reconstruct exact positions.
func (a *Archive) ReconstructPartial() (lines []string, damaged []BlockError) {
	damaged = a.Damage()
	for _, b := range a.blocks {
		st, err := b.openStore(context.Background(), a.hook())
		if err != nil {
			damaged = append(damaged, *b.asBlockError(err))
			continue
		}
		got, err := st.ReconstructAll()
		if err != nil {
			damaged = append(damaged, *b.asBlockError(err))
			continue
		}
		lines = append(lines, got...)
	}
	sort.SliceStable(damaged, func(i, j int) bool { return damaged[i].FirstLine < damaged[j].FirstLine })
	return lines, damaged
}

// Verify checks the archive's integrity and returns every damaged region
// (nil when pristine). It always verifies structure and payload checksums
// plus metadata decode; deep additionally reconstructs every block's lines,
// exercising the full decode path the way a restore would.
func (a *Archive) Verify(deep bool) []BlockError {
	damaged := a.Damage()
	for _, b := range a.blocks {
		st, err := b.openStore(context.Background(), a.hook())
		if err != nil {
			damaged = append(damaged, *b.asBlockError(err))
			continue
		}
		if deep {
			if _, err := st.ReconstructAll(); err != nil {
				damaged = append(damaged, *b.asBlockError(err))
			}
		}
	}
	sort.SliceStable(damaged, func(i, j int) bool { return damaged[i].FirstLine < damaged[j].FirstLine })
	if len(damaged) == 0 {
		return nil
	}
	return damaged
}
