// Package archive stores a log stream as a sequence of independently
// compressed CapsuleBox blocks, the way the paper's production setting
// works (§2: applications write raw logs into 64 MB blocks; each block is
// compressed in the background and queried independently).
//
// The archive extends the paper's Capsule-stamp idea one level up: every
// block carries a block stamp (character-type mask plus maximal line
// length over all its entries), so a query fragment that cannot occur in a
// block skips it without even decoding the block's metadata. Compression
// of blocks and query execution over blocks both parallelize across
// goroutines — the "scale out" direction §8 names as future work.
//
// Frame format v2 adds per-frame CRC32C checksums (see frame.go) so that
// storage corruption is detected and quarantined block by block instead of
// poisoning the whole archive; Open still reads v1 streams.
//
// Cross-block query work is observable: each query records block-skip and
// per-block latency metrics into obsv.Default (the loggrep_archive_*
// family, documented in OPERATIONS.md), and QueryTraced returns a span
// per searched block alongside the result.
package archive
