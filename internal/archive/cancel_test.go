package archive

import (
	"context"
	"errors"
	"testing"
	"time"

	"loggrep/internal/core"
	"loggrep/internal/faultinject"
	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
)

// buildTestArchive compresses a multi-block stream and opens it.
func buildTestArchive(t *testing.T, gen string, blockBytes, lines int) (*Archive, []string) {
	t.Helper()
	lt, _ := loggen.ByName(gen)
	stream := lt.Block(7, lines)
	data, err := Compress(stream, testOptions(blockBytes))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	return a, logparse.SplitLines(stream)
}

// TestArchiveStalledQueryCancelledWithinDeadline is the tentpole
// acceptance criterion: with every block read stalled far beyond the
// deadline, QueryContext returns context.DeadlineExceeded within 2x the
// deadline — and, crucially, the interrupted blocks are NOT quarantined:
// the same archive answers the same query completely once the stall is
// removed.
func TestArchiveStalledQueryCancelledWithinDeadline(t *testing.T) {
	a, lines := buildTestArchive(t, "A", 25_000, 2500)
	if a.NumBlocks() < 2 {
		t.Fatalf("want a multi-block archive, got %d blocks", a.NumBlocks())
	}
	a.SetReadHook(faultinject.SlowRead(30 * time.Second))

	const deadline = 250 * time.Millisecond
	ctx, cancel := context.WithTimeout(context.Background(), deadline)
	defer cancel()
	start := time.Now()
	_, err := a.QueryContext(ctx, "ERROR", 4, core.Budget{})
	elapsed := time.Since(start)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("stalled archive query returned %v, want context.DeadlineExceeded", err)
	}
	if elapsed > 2*deadline {
		t.Fatalf("stalled archive query took %v, want <= %v (2x deadline)", elapsed, 2*deadline)
	}

	// No latched damage: remove the stall and the full answer comes back.
	a.SetReadHook(nil)
	res, err := a.Query("ERROR", 0)
	if err != nil {
		t.Fatalf("query after clearing stall: %v", err)
	}
	if len(res.Damaged) > 0 {
		t.Fatalf("cancelled blocks were quarantined as damage: %v", res.Damaged)
	}
	want := oracle(t, lines, "ERROR")
	if len(res.Lines) != len(want) {
		t.Fatalf("post-stall query found %d matches, want %d", len(res.Lines), len(want))
	}
}

// TestArchiveBudgetPartial caps an archive query's decompressions and
// checks the Partial contract end to end: the flag set, the reason named,
// the matches a strict subset-or-equal of the oracle, no wrong entries.
func TestArchiveBudgetPartial(t *testing.T) {
	a, lines := buildTestArchive(t, "G", 20_000, 2500)
	full, err := a.Query("ERROR", 0)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, lines, "ERROR")
	if len(full.Lines) != len(want) {
		t.Fatalf("unbudgeted query found %d matches, oracle %d", len(full.Lines), len(want))
	}

	// A fresh archive, so payload caches are cold and the cap bites. The
	// block-skipping index is turned off: it can prove most blocks
	// matchless and finish the query inside any budget, and this test is
	// about the budget contract on the full-scan path.
	a2, _ := buildTestArchive(t, "G", 20_000, 2500)
	a2.SetIndexEnabled(false)
	res, err := a2.QueryContext(context.Background(), "ERROR", 2, core.Budget{MaxDecompressions: 2})
	if err != nil {
		t.Fatal(err)
	}
	if !res.Partial {
		t.Fatalf("2-decompression budget over %d blocks did not produce a partial result", a2.NumBlocks())
	}
	if res.PartialReason == "" {
		t.Fatal("Partial result without a reason")
	}
	oracleSet := make(map[int]bool, len(want))
	for _, l := range want {
		oracleSet[l] = true
	}
	for i, line := range res.Lines {
		if !oracleSet[line] {
			t.Fatalf("partial result line %d not in oracle", line)
		}
		if res.Entries[i] != lines[line] {
			t.Fatalf("partial result entry %d corrupted", line)
		}
	}
	if len(res.Lines) > len(want) {
		t.Fatalf("partial result has more matches (%d) than the oracle (%d)", len(res.Lines), len(want))
	}
}

// TestArchiveQueryPreCancelled: cancellation observed before any block
// work returns immediately with the context error.
func TestArchiveQueryPreCancelled(t *testing.T) {
	a, _ := buildTestArchive(t, "A", 25_000, 1500)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := a.QueryContext(ctx, "ERROR", 0, core.Budget{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("QueryContext on cancelled ctx = %v, want context.Canceled", err)
	}
}
