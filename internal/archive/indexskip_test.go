package archive

import (
	"fmt"
	"strings"
	"testing"

	"loggrep/internal/logparse"
)

// indexSkipStream builds a synthetic multi-group log shaped like real
// service logs: each group of lines carries a group-unique shard tag
// (textual, postings-visible) and draws session ids from a small
// per-group pool (values repeat within a block, as production values
// do), and one group hides a unique hex trace id (blooms-visible).
// Group g occupies a contiguous run of lines, so block boundaries cut
// through at most two groups per tag.
func indexSkipStream(groups, linesPer int) ([]byte, func(g int) string) {
	tag := func(g int) string {
		return fmt.Sprintf("shard%c%c", rune('g'+g%20), rune('g'+g/20%20))
	}
	// Deterministic splitmix64; no global rand, no wall clock.
	mix := func(x uint64) uint64 {
		x += 0x9e3779b97f4a7c15
		x = (x ^ x>>30) * 0xbf58476d1ce4e5b9
		x = (x ^ x>>27) * 0x94d049bb133111eb
		return x ^ x>>31
	}
	// Values are drawn pseudo-randomly per line from small per-group
	// pools: the draw sequence is incompressible (real frames, honest
	// overhead ratio) while the distinct-gram count stays bounded (the
	// paper's low-variety-variable observation).
	var sb strings.Builder
	line := 0
	for g := 0; g < groups; g++ {
		for i := 0; i < linesPer; i++ {
			draw := mix(uint64(line))
			fmt.Fprintf(&sb, "svc worker heartbeat ok %s sess %016x seq %05d\n",
				tag(g), mix(uint64(g)<<32|draw%100), draw>>32%100)
			line++
		}
		if g == 7 {
			sb.WriteString("svc worker trace 9f8e7d6c5b4a3921 committed\n")
		}
	}
	return []byte(sb.String()), tag
}

// TestIndexSkipRate is the regression floor for the block-skipping
// index: on a selective query over a multi-block archive, at least 90%
// of blocks must be skipped before any capsule decompression, and the
// index sections must cost at most 5% of the archive. Both numbers are
// recorded as bench metrics (logbench -exp index); this test is the
// tripwire that fails the suite rather than the bench dashboard.
func TestIndexSkipRate(t *testing.T) {
	const groups, linesPer = 32, 4000
	stream, tag := indexSkipStream(groups, linesPer)
	lines := logparse.SplitLines(stream)
	opts := testOptions(len(stream) / groups) // ~one group per block
	data, err := Compress(stream, opts)
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() < 30 {
		t.Fatalf("only %d blocks; skip-rate floor needs a real multi-block archive", a.NumBlocks())
	}
	if !a.HasIndex() {
		t.Fatal("archive has no index")
	}

	// Storage overhead: index bytes over file bytes.
	st := a.IndexStats()
	if st.Damaged != 0 {
		t.Fatalf("fresh index reports damage: %+v", st)
	}
	overhead := float64(st.TotalBytes()) / float64(len(data))
	t.Logf("index overhead: %d of %d bytes (%.2f%%), %d blocks, %d tokens",
		st.TotalBytes(), len(data), 100*overhead, st.Blocks, st.Tokens)
	if overhead > 0.05 {
		t.Fatalf("index overhead %.2f%% exceeds the 5%% budget", 100*overhead)
	}

	skipRate := func(q string, wantMatches int) float64 {
		t.Helper()
		p0, b0 := a.IndexSkipped()
		res, err := a.Query(q, 3)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Lines) != wantMatches {
			t.Fatalf("query %q: %d matches, want %d", q, len(res.Lines), wantMatches)
		}
		for i, l := range res.Lines {
			if res.Entries[i] != lines[l] {
				t.Fatalf("query %q: entry %d differs from raw line %d", q, i, l)
			}
		}
		p1, b1 := a.IndexSkipped()
		return float64((p1-p0)+(b1-b0)) / float64(a.NumBlocks())
	}

	// Postings selectivity: a group-unique textual tag.
	if r := skipRate(tag(17), linesPer); r < 0.9 {
		t.Fatalf("postings skip rate %.2f for a single-group tag, want >= 0.9", r)
	}
	// Bloom selectivity: a hex id the postings cannot hold (it
	// normalizes to a volatile shape) planted in exactly one group.
	if r := skipRate("9f8e7d6c5b4a3921", 1); r < 0.9 {
		t.Fatalf("bloom skip rate %.2f for a unique trace id, want >= 0.9", r)
	}
	// Absent keyword: everything skippable.
	if r := skipRate("zzz_absent_zzz", 0); r < 0.9 {
		t.Fatalf("skip rate %.2f for an absent keyword, want >= 0.9", r)
	}
}
