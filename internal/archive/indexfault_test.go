package archive

import (
	"testing"

	"loggrep/internal/blockindex"
	"loggrep/internal/faultinject"
	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
)

// TestIndexFaultInjectionSweep corrupts every region of the index tail —
// section header bits byte by byte, sampled payload bits, zero runs,
// truncations at and inside section boundaries, section reordering, and
// trailing garbage — and asserts the index damage contract: because the
// data frames are untouched, every query must return exactly the
// pristine result set. A damaged index may only cost speed (full scan),
// never a wrong or missing match, and must never surface as archive
// damage.
func TestIndexFaultInjectionSweep(t *testing.T) {
	lt, _ := loggen.ByName("G")
	stream := lt.Block(42, 2500)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(20_000))
	if err != nil {
		t.Fatal(err)
	}
	tailOff, sections, err := IndexSectionRange(data)
	if err != nil {
		t.Fatal(err)
	}
	if tailOff <= 0 || tailOff >= len(data) {
		t.Fatalf("no index tail: tailOff=%d len=%d", tailOff, len(data))
	}
	if len(sections) != 2 {
		t.Fatalf("expected 2 index sections, got %d", len(sections))
	}

	queries := []string{lt.Query, "Operation:WriteChunk", "NOT INFO"}
	type wantRes struct {
		lines   []int
		entries []string
	}
	want := map[string]wantRes{}
	for _, q := range queries {
		ls := oracle(t, lines, q)
		es := make([]string, len(ls))
		for i, l := range ls {
			es[i] = lines[l]
		}
		if len(ls) == 0 {
			t.Fatalf("query %q matches nothing; sweep would prove nothing", q)
		}
		want[q] = wantRes{lines: ls, entries: es}
	}

	check := func(name string, mutated []byte) {
		t.Helper()
		a, err := Open(mutated)
		if err != nil {
			t.Fatalf("%s: index corruption broke Open: %v", name, err)
		}
		if d := a.Damage(); len(d) != 0 {
			t.Fatalf("%s: index corruption misreported as archive damage: %v", name, d)
		}
		if d := a.Verify(false); len(d) != 0 {
			t.Fatalf("%s: Verify reports damage for index-only corruption: %v", name, d)
		}
		for _, q := range queries {
			res, err := a.Query(q, 2)
			if err != nil {
				t.Fatalf("%s: query %q: %v", name, q, err)
			}
			if len(res.Damaged) != 0 {
				t.Fatalf("%s: query %q reported damage: %v", name, q, res.Damaged)
			}
			w := want[q]
			if len(res.Lines) != len(w.lines) {
				t.Fatalf("%s: query %q: %d matches, pristine has %d", name, q, len(res.Lines), len(w.lines))
			}
			for i := range w.lines {
				if res.Lines[i] != w.lines[i] {
					t.Fatalf("%s: query %q: match %d at line %d, pristine at %d", name, q, i, res.Lines[i], w.lines[i])
				}
				if res.Entries[i] != w.entries[i] {
					t.Fatalf("%s: query %q: entry %d text differs", name, q, i)
				}
			}
		}
	}

	// The pristine archive anchors the contract.
	check("pristine", data)

	var cs []faultinject.Corruptor
	for _, sec := range sections {
		secOff := tailOff + sec.Off
		// Every header byte, every bit-position class.
		for off := secOff; off < secOff+18; off++ {
			cs = append(cs, faultinject.BitFlip(off, uint(off)))
		}
		payloadOff := secOff + 18
		payloadLen := sec.Len - 18
		// Sampled payload positions (first, last, and spread).
		for k := 0; k < 16 && payloadLen > 0; k++ {
			cs = append(cs, faultinject.BitFlip(payloadOff+k*payloadLen/16, uint(k)))
		}
		if payloadLen > 0 {
			cs = append(cs, faultinject.BitFlip(payloadOff+payloadLen-1, 7))
			cs = append(cs, faultinject.ZeroRun(payloadOff, payloadLen))
		}
		if payloadLen > 16 {
			cs = append(cs, faultinject.ZeroRun(payloadOff+payloadLen/2, 8))
		}
		// Truncations at and inside the section.
		cs = append(cs,
			faultinject.Truncate(secOff),
			faultinject.Truncate(secOff+9),
			faultinject.Truncate(secOff+18),
			faultinject.Truncate(secOff+18+payloadLen/2),
		)
	}
	// Whole-tail mutations: cut clean, swap the two sections, append
	// garbage after the last one.
	cs = append(cs, faultinject.Truncate(tailOff))
	s0, s1 := sections[0], sections[1]
	cs = append(cs, faultinject.SwapRanges(
		tailOff+s0.Off, s0.Len, tailOff+s1.Off, s1.Len))

	for _, c := range cs {
		check(c.Name, c.Apply(data))
	}
	garbage := append(append([]byte(nil), data...), "LGIXgarbage-that-is-not-a-section"...)
	check("trailing-garbage", garbage)
	t.Logf("index sweep: %d corruptions over %d sections (%d tail bytes)",
		len(cs)+1, len(sections), len(data)-tailOff)
}

// TestIndexDamagedStillSkips pins the partial-degradation path: with the
// postings section destroyed but the blooms intact, queries still answer
// exactly and the surviving section still skips blocks.
func TestIndexDamagedStillSkips(t *testing.T) {
	lt, _ := loggen.ByName("A")
	stream := lt.Block(7, 2500)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(20_000))
	if err != nil {
		t.Fatal(err)
	}
	tailOff, sections, err := IndexSectionRange(data)
	if err != nil {
		t.Fatal(err)
	}
	var postings *blockindex.SectionInfo
	for i := range sections {
		if sections[i].Kind == blockindex.KindPostings {
			postings = &sections[i]
		}
	}
	if postings == nil {
		t.Fatal("no postings section found")
	}
	mutated := faultinject.BitFlip(tailOff+postings.Off+18, 3).Apply(data)
	a, err := Open(mutated)
	if err != nil {
		t.Fatal(err)
	}
	st := a.IndexStats()
	if st.Damaged != 1 {
		t.Fatalf("Damaged = %d, want 1", st.Damaged)
	}
	if st.BloomBytes == 0 {
		t.Fatal("bloom section lost with the postings")
	}
	q := lt.Query
	wantLines := oracle(t, lines, q)
	res, err := a.Query(q, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != len(wantLines) {
		t.Fatalf("%d matches, oracle says %d", len(res.Lines), len(wantLines))
	}
	// An absent value must still be skippable through the surviving
	// blooms.
	if _, err := a.Query("zzz_absent_7q8w9e", 2); err != nil {
		t.Fatal(err)
	}
	if post, bloom := a.IndexSkipped(); bloom == 0 {
		t.Fatalf("surviving blooms skipped nothing (postings=%d blooms=%d)", post, bloom)
	}
}
