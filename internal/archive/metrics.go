package archive

import "loggrep/internal/obsv"

// Cross-block query metrics, registered in obsv.Default (served by
// internal/server at /metrics). Every name here is documented in
// OPERATIONS.md; keep the two in sync.
var (
	mArchiveQueries = obsv.Default.Counter("loggrep_archive_queries_total",
		"Queries executed against multi-block archives")
	mArchiveQueryNS = obsv.Default.Histogram("loggrep_archive_query_ns", "ns",
		"Per-query end-to-end latency across all blocks of an archive")
	mArchiveBlocksSkipped = obsv.Default.Counter("loggrep_archive_blocks_skipped_total",
		"Blocks eliminated by block-stamp filtering without opening them")
	mArchiveBlocksSearched = obsv.Default.Counter("loggrep_archive_blocks_searched_total",
		"Blocks whose stores actually executed a query")
	mArchiveBlockNS = obsv.Default.Histogram("loggrep_archive_block_query_ns", "ns",
		"Per-block query latency within archive queries")
	mArchiveQueriesCancelled = obsv.Default.Counter("loggrep_archive_query_cancelled_total",
		"Archive queries stopped by context cancellation or deadline expiry")
	mArchiveQueryPartial = obsv.Default.Counter("loggrep_archive_query_partial_total",
		"Archive queries cut short by an exhausted work budget (partial results)")

	// Block-skipping index funnel (internal/blockindex).
	mArchiveIndexBytes = obsv.Default.Counter("loggrep_archive_index_bytes_total",
		"Bytes of block-skipping index sections written by archive writers")
	mArchiveIndexVocabOverflow = obsv.Default.Counter("loggrep_archive_index_vocab_overflow_total",
		"Archives whose postings section was dropped at the vocabulary cap")
	mArchiveIndexSkippedPostings = obsv.Default.Counter("loggrep_archive_blocks_skipped_postings_total",
		"Blocks eliminated by the token-postings section without opening them")
	mArchiveIndexSkippedBlooms = obsv.Default.Counter("loggrep_archive_blocks_skipped_blooms_total",
		"Blocks eliminated by per-block gram bloom filters without opening them")
	mArchiveIndexAdmitted = obsv.Default.Counter("loggrep_archive_index_admitted_total",
		"Blocks an index-filterable query admitted for searching")
	mArchiveIndexFalseAdmit = obsv.Default.Counter("loggrep_archive_index_false_admit_total",
		"Index-admitted blocks that were searched and yielded no match (upper bound on index false positives)")
	mArchiveIndexUnusable = obsv.Default.Counter("loggrep_archive_index_unusable_total",
		"Archive queries that ran as full scans: index absent, damaged, disabled, or query not token-filterable")
)
