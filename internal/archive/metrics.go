package archive

import "loggrep/internal/obsv"

// Cross-block query metrics, registered in obsv.Default (served by
// internal/server at /metrics). Every name here is documented in
// OPERATIONS.md; keep the two in sync.
var (
	mArchiveQueries = obsv.Default.Counter("loggrep_archive_queries_total",
		"Queries executed against multi-block archives")
	mArchiveQueryNS = obsv.Default.Histogram("loggrep_archive_query_ns", "ns",
		"Per-query end-to-end latency across all blocks of an archive")
	mArchiveBlocksSkipped = obsv.Default.Counter("loggrep_archive_blocks_skipped_total",
		"Blocks eliminated by block-stamp filtering without opening them")
	mArchiveBlocksSearched = obsv.Default.Counter("loggrep_archive_blocks_searched_total",
		"Blocks whose stores actually executed a query")
	mArchiveBlockNS = obsv.Default.Histogram("loggrep_archive_block_query_ns", "ns",
		"Per-block query latency within archive queries")
	mArchiveQueriesCancelled = obsv.Default.Counter("loggrep_archive_query_cancelled_total",
		"Archive queries stopped by context cancellation or deadline expiry")
	mArchiveQueryPartial = obsv.Default.Counter("loggrep_archive_query_partial_total",
		"Archive queries cut short by an exhausted work budget (partial results)")
)
