package archive

import (
	"context"

	"loggrep/internal/blockindex"
	"loggrep/internal/core"
	"loggrep/internal/query"
	"loggrep/internal/rtpattern"
)

// BlockInfo describes one readable block for inspection tools — the
// anatomy inspector (`loggrep stats`) and archive-level explain. Box is
// the block's raw CapsuleBox bytes, aliasing the archive buffer.
type BlockInfo struct {
	Index     int
	FirstLine int
	NumLines  int
	RawBytes  int
	Stamp     rtpattern.Stamp
	Box       []byte
}

// BlockInfos returns the readable blocks in line order.
func (a *Archive) BlockInfos() []BlockInfo {
	out := make([]BlockInfo, len(a.blocks))
	for i, b := range a.blocks {
		out[i] = BlockInfo{
			Index:     b.idx,
			FirstLine: b.lineOff,
			NumLines:  b.meta.numLines,
			RawBytes:  b.meta.rawBytes,
			Stamp:     b.meta.stamp,
			Box:       b.box,
		}
	}
	return out
}

// Explain analyzes a command across the whole archive without producing
// result entries: blocks the per-block stamps eliminate are skipped (and
// counted), every other block is explained like a single box, and the
// per-group funnels are merged by template so the output reads like one
// big box. Damaged blocks are counted, never fatal — same contract as
// Query.
func (a *Archive) Explain(command string) (*core.Explain, error) {
	expr, err := query.Parse(command)
	if err != nil {
		return nil, err
	}
	agg := &core.Explain{Command: command, NumLines: a.numLines, Blocks: len(a.blocks)}
	// Mirror queryTraced's index funnel so the explanation reports the
	// same pruning a real query would get.
	var plan *blockindex.Plan
	switch {
	case a.indexDisabled.Load():
		agg.IndexState = "disabled"
	case a.index.Empty():
		agg.IndexState = "absent"
	default:
		if p := a.index.NewPlan(expr); !p.Filterable {
			agg.IndexState = "not-filterable"
		} else {
			plan = p
			switch {
			case p.UsedPostings && p.UsedBlooms:
				agg.IndexState = "postings+blooms"
			case p.UsedPostings:
				agg.IndexState = "postings"
			default:
				agg.IndexState = "blooms"
			}
		}
	}
	hook := a.hook()
	for _, b := range a.blocks {
		if plan != nil {
			switch plan.Admits(uint64(b.lineOff), b.meta.numLines) {
			case blockindex.SkipPostings:
				agg.BlocksSkippedPostings++
				continue
			case blockindex.SkipBlooms:
				agg.BlocksSkippedBlooms++
				continue
			}
		}
		if !mayMatch(expr, b.meta.stamp) {
			agg.BlocksSkipped++
			continue
		}
		st, err := b.openStore(context.Background(), hook)
		if err != nil {
			agg.BlocksDamaged++
			continue
		}
		ex, err := st.Explain(command)
		if err != nil {
			agg.BlocksDamaged++
			continue
		}
		agg.BlocksSearched++
		mergeExplain(agg, ex)
	}
	return agg, nil
}

// mergeExplain folds one block's explanation into the aggregate: searches
// line up by position (both come from the same parsed command), and groups
// merge by template string — rows, funnel counts, and candidates sum.
func mergeExplain(agg, ex *core.Explain) {
	agg.Decompressions += ex.Decompressions
	agg.StampPrunes += ex.StampPrunes
	for si, se := range ex.Searches {
		if si >= len(agg.Searches) {
			agg.Searches = append(agg.Searches, core.SearchExplain{
				Phrase:    se.Phrase,
				Fragments: se.Fragments,
			})
		}
		as := &agg.Searches[si]
		as.Candidates += se.Candidates
		for _, ge := range se.Groups {
			gi := -1
			for i := range as.Groups {
				if as.Groups[i].Template == ge.Template {
					gi = i
					break
				}
			}
			if gi < 0 {
				as.Groups = append(as.Groups, core.GroupExplain{
					Template:      ge.Template,
					AfterFragment: make([]int, len(ge.AfterFragment)),
				})
				gi = len(as.Groups) - 1
			}
			ag := &as.Groups[gi]
			ag.Rows += ge.Rows
			for i, n := range ge.AfterFragment {
				if i < len(ag.AfterFragment) {
					ag.AfterFragment[i] += n
				} else {
					ag.AfterFragment = append(ag.AfterFragment, n)
				}
			}
		}
	}
}
