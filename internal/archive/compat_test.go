package archive

import (
	"bytes"
	"os"
	"testing"

	"loggrep/internal/logparse"
)

// TestV1FixtureCompat opens a checked-in archive written by the v1
// (pre-checksum) format and verifies it answers queries and reconstructs
// identically to the raw log it was built from. The fixture bytes were
// produced by the v1 writer before the v2 format landed; they must keep
// opening forever.
func TestV1FixtureCompat(t *testing.T) {
	raw, err := os.ReadFile("testdata/v1_fixture.log")
	if err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile("testdata/v1_fixture.lgrep")
	if err != nil {
		t.Fatal(err)
	}
	if !hasMagic(data, MagicV1) {
		t.Fatalf("fixture is not a v1 archive (magic %q)", data[:8])
	}
	if !IsArchive(data) {
		t.Fatal("IsArchive rejects the v1 fixture")
	}
	lines := logparse.SplitLines(raw)

	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLines() != len(lines) {
		t.Fatalf("lines = %d, want %d", a.NumLines(), len(lines))
	}
	if a.NumBlocks() < 4 {
		t.Fatalf("fixture has %d blocks, want >= 4", a.NumBlocks())
	}
	if a.RawBytes() != len(raw) {
		t.Fatalf("raw bytes = %d, want %d", a.RawBytes(), len(raw))
	}
	if d := a.Verify(true); d != nil {
		t.Fatalf("pristine v1 fixture reports damage: %v", d)
	}

	for _, cmd := range []string{"ERROR", "Operation:WriteChunk", "NOT INFO"} {
		res, err := a.Query(cmd, 2)
		if err != nil {
			t.Fatalf("query %q: %v", cmd, err)
		}
		if len(res.Damaged) != 0 {
			t.Fatalf("query %q reports damage on pristine fixture: %v", cmd, res.Damaged)
		}
		want := oracle(t, lines, cmd)
		if len(res.Lines) != len(want) {
			t.Fatalf("query %q: %d matches, want %d", cmd, len(res.Lines), len(want))
		}
		for i := range want {
			if res.Lines[i] != want[i] || res.Entries[i] != lines[want[i]] {
				t.Fatalf("query %q: mismatch at %d", cmd, i)
			}
		}
	}

	got, err := a.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], lines[i])
		}
	}
}

// TestFormatV1RoundTrip keeps the v1 writer path alive: archives written
// with Options.FormatV1 carry the v1 magic and read back identically to
// their v2 counterparts.
func TestFormatV1RoundTrip(t *testing.T) {
	raw, err := os.ReadFile("testdata/v1_fixture.log")
	if err != nil {
		t.Fatal(err)
	}
	opts := testOptions(60_000)
	opts.FormatV1 = true
	data, err := Compress(raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !hasMagic(data, MagicV1) {
		t.Fatalf("FormatV1 output carries magic %q", data[:8])
	}
	// Single-worker compression is deterministic: the fresh v1 stream must
	// be byte-identical to the checked-in fixture, proving the legacy
	// encoder still emits exactly what the seed writer did.
	opts.Workers = 1
	data1, err := Compress(raw, opts)
	if err != nil {
		t.Fatal(err)
	}
	fixture, err := os.ReadFile("testdata/v1_fixture.lgrep")
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(data1, fixture) {
		t.Fatal("FormatV1 output diverged from the seed-written fixture")
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	lines := logparse.SplitLines(raw)
	if a.NumLines() != len(lines) {
		t.Fatalf("lines = %d, want %d", a.NumLines(), len(lines))
	}
	got, err := a.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d mismatch", i)
		}
	}
}
