package archive

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"

	"loggrep/internal/rtpattern"
)

// Frame format v2 ("LGRPARC2"). Every block is a frame: a fixed-size
// header followed by the CapsuleBox payload. Header and payload carry
// separate CRC32C checksums so damage is localized — a flipped bit in one
// payload quarantines that block only, and a damaged header is skipped by
// re-synchronizing on the next header whose checksum verifies.
//
//	offset size field
//	0      4    uint32 LE  boxLen      (0 marks the terminator frame)
//	4      4    uint32 LE  numLines    lines in the block
//	8      4    uint32 LE  rawBytes    raw size the block was built from
//	12     8    uint64 LE  lineOff     global line number of the first line
//	20     1    uint8      stamp type mask
//	21     4    uint32 LE  stamp max line length
//	25     4    uint32 LE  payload CRC32C (0 for the terminator)
//	29     4    uint32 LE  header CRC32C over bytes [0,29)
//
// The header stores the ABSOLUTE line offset rather than relying on
// cumulative sums, so a reader that loses a frame to corruption can
// re-synchronize and still report the surviving blocks' lines under the
// same global numbering as a pristine archive. The terminator frame
// (boxLen 0) records the archive's total line count in lineOff, making
// truncation detectable even at a frame boundary.

// headerSize is the fixed v2 frame header size in bytes.
const headerSize = 33

// castagnoli is the CRC32C table (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// frameHeader is a decoded v2 frame header.
type frameHeader struct {
	boxLen     int
	meta       blockMeta
	lineOff    int
	payloadCRC uint32
}

// terminator reports whether the header marks the end of the archive.
func (h *frameHeader) terminator() bool { return h.boxLen == 0 }

// encodeHeader serializes a v2 frame header, computing both checksums.
func encodeHeader(meta blockMeta, lineOff int, payload []byte) []byte {
	var h [headerSize]byte
	binary.LittleEndian.PutUint32(h[0:], uint32(len(payload)))
	binary.LittleEndian.PutUint32(h[4:], uint32(meta.numLines))
	binary.LittleEndian.PutUint32(h[8:], uint32(meta.rawBytes))
	binary.LittleEndian.PutUint64(h[12:], uint64(lineOff))
	h[20] = meta.stamp.TypeMask
	binary.LittleEndian.PutUint32(h[21:], uint32(meta.stamp.MaxLen))
	if len(payload) > 0 {
		binary.LittleEndian.PutUint32(h[25:], crc32.Checksum(payload, castagnoli))
	}
	binary.LittleEndian.PutUint32(h[29:], crc32.Checksum(h[:29], castagnoli))
	return h[:]
}

// decodeHeader parses a candidate v2 frame header and verifies its
// checksum. ok is false when the checksum does not match.
func decodeHeader(b []byte) (h frameHeader, ok bool) {
	if len(b) < headerSize {
		return h, false
	}
	if crc32.Checksum(b[:29], castagnoli) != binary.LittleEndian.Uint32(b[29:33]) {
		return h, false
	}
	h.boxLen = int(binary.LittleEndian.Uint32(b[0:]))
	h.meta.numLines = int(binary.LittleEndian.Uint32(b[4:]))
	h.meta.rawBytes = int(binary.LittleEndian.Uint32(b[8:]))
	h.lineOff = int(binary.LittleEndian.Uint64(b[12:]))
	h.meta.stamp = rtpattern.Stamp{TypeMask: b[20], MaxLen: int(binary.LittleEndian.Uint32(b[21:]))}
	h.payloadCRC = binary.LittleEndian.Uint32(b[25:29])
	return h, true
}

// FrameInfo locates one frame inside an archive buffer (diagnostics,
// verification tooling and fault-injection tests).
type FrameInfo struct {
	// HeaderOff is the offset of the frame header (v2) or of the frame's
	// leading length varint (v1).
	HeaderOff int
	// PayloadOff is the offset of the CapsuleBox payload.
	PayloadOff int
	// PayloadLen is the payload length in bytes.
	PayloadLen int
	// Lines is the number of log lines the frame's block holds.
	Lines int
	// Terminator marks the archive's final frame.
	Terminator bool
}

// ScanFrames structurally parses an archive and returns the location of
// every frame, terminator included. It fails on the first undecodable
// frame — it is a layout scan for tooling and tests, not the quarantining
// reader (use Open for that).
func ScanFrames(data []byte) ([]FrameInfo, error) {
	switch {
	case hasMagic(data, Magic):
		return scanFramesV2(data)
	case hasMagic(data, MagicV1):
		return scanFramesV1(data)
	}
	return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
}

func scanFramesV2(data []byte) ([]FrameInfo, error) {
	var out []FrameInfo
	pos := len(Magic)
	for {
		h, ok := decodeHeader(data[pos:min(pos+headerSize, len(data))])
		if !ok {
			return nil, fmt.Errorf("%w: bad frame header at %d", ErrCorrupt, pos)
		}
		fi := FrameInfo{
			HeaderOff:  pos,
			PayloadOff: pos + headerSize,
			PayloadLen: h.boxLen,
			Lines:      h.meta.numLines,
			Terminator: h.terminator(),
		}
		if h.boxLen > len(data)-pos-headerSize {
			return nil, fmt.Errorf("%w: truncated frame at %d", ErrCorrupt, pos)
		}
		out = append(out, fi)
		pos += headerSize + h.boxLen
		if fi.Terminator {
			return out, nil
		}
	}
}

func scanFramesV1(data []byte) ([]FrameInfo, error) {
	var out []FrameInfo
	pos := len(MagicV1)
	for {
		start := pos
		boxLen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad frame length at %d", ErrCorrupt, pos)
		}
		pos += n
		if boxLen == 0 {
			out = append(out, FrameInfo{HeaderOff: start, PayloadOff: pos, Terminator: true})
			return out, nil
		}
		if boxLen > uint64(len(data)-pos) {
			return nil, fmt.Errorf("%w: truncated frame at %d", ErrCorrupt, start)
		}
		fi := FrameInfo{HeaderOff: start, PayloadOff: pos, PayloadLen: int(boxLen)}
		pos += int(boxLen)
		// v1 trailer: numLines, rawBytes, mask, maxLen.
		lines, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad frame meta at %d", ErrCorrupt, pos)
		}
		fi.Lines = int(lines)
		pos += n
		if _, n = binary.Uvarint(data[pos:]); n <= 0 {
			return nil, fmt.Errorf("%w: bad frame meta at %d", ErrCorrupt, pos)
		}
		pos += n + 1 // rawBytes + mask byte
		if pos > len(data) {
			return nil, fmt.Errorf("%w: bad frame stamp at %d", ErrCorrupt, start)
		}
		if _, n = binary.Uvarint(data[pos:]); n <= 0 {
			return nil, fmt.Errorf("%w: bad frame meta at %d", ErrCorrupt, pos)
		}
		pos += n
		out = append(out, fi)
	}
}

// hasMagic reports whether data starts with the given magic string.
func hasMagic(data []byte, magic string) bool {
	return len(data) >= len(magic) && string(data[:len(magic)]) == magic
}
