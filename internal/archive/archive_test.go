package archive

import (
	"bytes"
	"errors"
	"strings"
	"testing"

	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
	"loggrep/internal/query"
)

func testOptions(blockBytes int) Options {
	o := DefaultOptions()
	o.BlockBytes = blockBytes
	o.Workers = 4
	return o
}

func TestArchiveRoundTrip(t *testing.T) {
	lt, _ := loggen.ByName("A")
	stream := lt.Block(9, 6000)
	data, err := Compress(stream, testOptions(100_000)) // several blocks
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() < 3 {
		t.Fatalf("blocks = %d, want several", a.NumBlocks())
	}
	if a.RawBytes() != len(stream) {
		t.Fatalf("raw bytes = %d, want %d", a.RawBytes(), len(stream))
	}
	want := logparse.SplitLines(stream)
	if a.NumLines() != len(want) {
		t.Fatalf("lines = %d, want %d", a.NumLines(), len(want))
	}
	got, err := a.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], want[i])
		}
	}
}

func TestArchiveQueryEquivalence(t *testing.T) {
	lt, _ := loggen.ByName("G")
	stream := lt.Block(4, 8000)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(150_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	queries := []string{
		lt.Query,
		"Operation:WriteChunk",
		"ERROR OR TraceId:3615*",
		"NOT INFO",
		"heartbeat AND node-7",
	}
	for _, cmd := range queries {
		for _, workers := range []int{1, 4} {
			res, err := a.Query(cmd, workers)
			if err != nil {
				t.Fatalf("query %q: %v", cmd, err)
			}
			want := oracle(t, lines, cmd)
			if len(res.Lines) != len(want) {
				t.Fatalf("query %q (workers=%d): %d matches, want %d", cmd, workers, len(res.Lines), len(want))
			}
			for i := range want {
				if res.Lines[i] != want[i] || res.Entries[i] != lines[want[i]] {
					t.Fatalf("query %q: mismatch at %d", cmd, i)
				}
			}
		}
	}
}

func oracle(t *testing.T, lines []string, command string) []int {
	t.Helper()
	expr, err := query.Parse(command)
	if err != nil {
		t.Fatal(err)
	}
	var match func(e query.Expr, l string) bool
	match = func(e query.Expr, l string) bool {
		switch x := e.(type) {
		case *query.And:
			return match(x.L, l) && match(x.R, l)
		case *query.Or:
			return match(x.L, l) || match(x.R, l)
		case *query.Not:
			return !match(x.X, l)
		case *query.Search:
			return x.MatchEntry(l)
		}
		return false
	}
	var out []int
	for i, l := range lines {
		if match(expr, l) {
			out = append(out, i)
		}
	}
	return out
}

// A fragment whose character classes are absent from a block must skip the
// block without opening it.
func TestArchiveBlockStampSkipping(t *testing.T) {
	// Two very different blocks: digits-only lines, then letters-only.
	var b bytes.Buffer
	w, err := NewWriter(&b, testOptions(60_000))
	if err != nil {
		t.Fatal(err)
	}
	digits := strings.Repeat("123 456 789\n", 6000)  // > one block
	letters := strings.Repeat("alpha beta c\n", 500) // final partial block
	if _, err := w.Write([]byte(digits)); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte(letters)); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	a, err := Open(b.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() < 2 {
		t.Fatalf("blocks = %d", a.NumBlocks())
	}
	// The block-skipping index would eliminate the digit blocks first;
	// turn it off so the stamp layer is what this test exercises.
	a.SetIndexEnabled(false)
	res, err := a.Query("alpha", 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 500 {
		t.Fatalf("matches = %d, want 500", len(res.Lines))
	}
	if a.SkippedBlocks() == 0 {
		t.Fatal("no blocks skipped by block stamps")
	}
	// The digit blocks must never have been opened.
	for _, blk := range a.blocks[:a.NumBlocks()-1] {
		if blk.store != nil {
			t.Fatal("digit block was opened despite stamp mismatch")
		}
	}
}

func TestArchiveEmpty(t *testing.T) {
	data, err := Compress(nil, testOptions(1000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() != 0 || a.NumLines() != 0 {
		t.Fatalf("empty archive: %d blocks %d lines", a.NumBlocks(), a.NumLines())
	}
	res, err := a.Query("x", 1)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 0 {
		t.Fatal("match in empty archive")
	}
}

func TestArchiveCorrupt(t *testing.T) {
	if _, err := Open(nil); err == nil {
		t.Fatal("nil accepted")
	}
	if _, err := Open([]byte("WRONGMAG rest")); err == nil {
		t.Fatal("bad magic accepted")
	}
	data, err := Compress([]byte("hello world 1\nhello world 2\n"), testOptions(1000))
	if err != nil {
		t.Fatal(err)
	}
	// v2 contract: truncation never fails Open outright, but it must never
	// go unnoticed either — every cut before the end of the terminator
	// frame surfaces as damage. Bytes past the terminator are optional
	// index sections: losing them degrades queries to full scans, and must
	// NOT be reported as data damage.
	tailOff, _, err := IndexSectionRange(data)
	if err != nil {
		t.Fatal(err)
	}
	if tailOff < 0 || tailOff >= len(data) {
		t.Fatalf("expected index sections after the terminator (tailOff %d, len %d)", tailOff, len(data))
	}
	for cut := len(Magic); cut < tailOff; cut++ {
		a, err := Open(data[:cut])
		if err != nil {
			continue
		}
		if len(a.Damage()) == 0 && a.Verify(true) == nil {
			t.Fatalf("truncation at %d undetected", cut)
		}
	}
	for cut := tailOff; cut < len(data); cut++ {
		a, err := Open(data[:cut])
		if err != nil {
			t.Fatalf("index-region truncation at %d failed Open: %v", cut, err)
		}
		if len(a.Damage()) != 0 || a.Verify(true) != nil {
			t.Fatalf("index-region truncation at %d misreported as data damage", cut)
		}
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Verify(true); d != nil {
		t.Fatalf("pristine archive reports damage: %v", d)
	}
}

func TestWriterAfterClose(t *testing.T) {
	var b bytes.Buffer
	w, err := NewWriter(&b, testOptions(1000))
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x\n")); err == nil {
		t.Fatal("write after close accepted")
	}
	if err := w.Close(); err != nil {
		t.Fatal("double close should be a no-op")
	}
}

type failingWriter struct{ after int }

func (f *failingWriter) Write(p []byte) (int, error) {
	if f.after <= 0 {
		return 0, errors.New("disk full")
	}
	f.after--
	return len(p), nil
}

func TestWriterPropagatesIOError(t *testing.T) {
	w, err := NewWriter(&failingWriter{after: 1}, testOptions(1000))
	if err != nil {
		t.Fatal(err)
	}
	big := strings.Repeat("some log line with text\n", 500)
	w.Write([]byte(big))
	if err := w.Close(); err == nil {
		t.Fatal("io error not propagated")
	}
}

func TestBlockCutRespectsLines(t *testing.T) {
	lt, _ := loggen.ByName("D")
	stream := lt.Block(2, 3000)
	data, err := Compress(stream, testOptions(50_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, blk := range a.blocks {
		total += blk.meta.numLines
	}
	if total != len(logparse.SplitLines(stream)) {
		t.Fatalf("line counts across blocks = %d", total)
	}
}

func TestArchiveEntry(t *testing.T) {
	lt, _ := loggen.ByName("S")
	stream := lt.Block(8, 4000)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(60_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	for _, line := range []int{0, 1, 1999, len(lines) - 1} {
		got, err := a.Entry(line)
		if err != nil {
			t.Fatalf("Entry(%d): %v", line, err)
		}
		if got != lines[line] {
			t.Fatalf("Entry(%d) = %q, want %q", line, got, lines[line])
		}
	}
	if _, err := a.Entry(-1); err == nil {
		t.Fatal("negative line accepted")
	}
	if _, err := a.Entry(len(lines)); err == nil {
		t.Fatal("past-end line accepted")
	}
}
