package archive

import (
	"bytes"
	"fmt"
	"strings"
	"sync"
	"testing"

	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
)

// TestWriterManySmallWrites drip-feeds the writer one fragment at a time
// — including writes that split lines mid-byte — and checks the archive
// reconstructs the stream exactly. The worker pool sees maximum churn
// because every block is tiny.
func TestWriterManySmallWrites(t *testing.T) {
	lt, _ := loggen.ByName("A")
	stream := lt.Block(2, 1200)

	var buf bytes.Buffer
	aw, err := NewWriter(&buf, testOptions(2_000)) // many tiny blocks
	if err != nil {
		t.Fatal(err)
	}
	// Fragment sizes cycle through awkward primes so writes rarely align
	// with line boundaries.
	sizes := []int{1, 7, 3, 31, 13, 127, 5, 251}
	for off, i := 0, 0; off < len(stream); i++ {
		n := sizes[i%len(sizes)]
		if off+n > len(stream) {
			n = len(stream) - off
		}
		if _, err := aw.Write(stream[off : off+n]); err != nil {
			t.Fatal(err)
		}
		off += n
	}
	if err := aw.Close(); err != nil {
		t.Fatal(err)
	}

	a, err := Open(buf.Bytes())
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Verify(true); d != nil {
		t.Fatalf("fresh archive damaged: %v", d)
	}
	got, err := a.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	want := logparse.SplitLines(stream)
	if len(got) != len(want) {
		t.Fatalf("%d lines reconstructed, want %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], want[i])
		}
	}
	if a.NumBlocks() < 10 {
		t.Fatalf("only %d blocks — block cutting not exercised", a.NumBlocks())
	}
}

// TestWriterOddBlockCuts sweeps BlockBytes through values that interact
// badly with line lengths (primes, one byte more than a line, etc.) and
// checks every cut produces a clean archive with consistent line
// accounting.
func TestWriterOddBlockCuts(t *testing.T) {
	lt, _ := loggen.ByName("P")
	stream := lt.Block(1, 600)
	want := logparse.SplitLines(stream)
	for _, blockBytes := range []int{1, 37, 101, 997, 4097, len(stream) - 1, len(stream), len(stream) + 1} {
		data, err := Compress(stream, testOptions(blockBytes))
		if err != nil {
			t.Fatalf("BlockBytes=%d: %v", blockBytes, err)
		}
		a, err := Open(data)
		if err != nil {
			t.Fatalf("BlockBytes=%d: open: %v", blockBytes, err)
		}
		if a.NumLines() != len(want) {
			t.Fatalf("BlockBytes=%d: %d lines, want %d", blockBytes, a.NumLines(), len(want))
		}
		if a.RawBytes() != len(stream) {
			t.Fatalf("BlockBytes=%d: raw %d, want %d", blockBytes, a.RawBytes(), len(stream))
		}
		got, err := a.ReconstructAll()
		if err != nil {
			t.Fatalf("BlockBytes=%d: %v", blockBytes, err)
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("BlockBytes=%d: line %d differs", blockBytes, i)
			}
		}
	}
}

// TestWriterEntryLargerThanBlock feeds single lines far bigger than
// BlockBytes: the cutter must never split a line, so each oversized entry
// becomes its own block and survives the round trip.
func TestWriterEntryLargerThanBlock(t *testing.T) {
	var sb strings.Builder
	for i := 0; i < 12; i++ {
		fmt.Fprintf(&sb, "entry %d payload %s\n", i, strings.Repeat("x", 3000+i*100))
	}
	stream := []byte(sb.String())
	data, err := Compress(stream, testOptions(1_000)) // every line > BlockBytes
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumLines() != 12 {
		t.Fatalf("%d lines, want 12", a.NumLines())
	}
	if a.NumBlocks() != 12 {
		t.Fatalf("%d blocks, want one per oversized entry", a.NumBlocks())
	}
	want := logparse.SplitLines(stream)
	for i := range want {
		got, err := a.Entry(i)
		if err != nil {
			t.Fatalf("entry %d: %v", i, err)
		}
		if got != want[i] {
			t.Fatalf("entry %d: %d bytes != %d bytes", i, len(got), len(want[i]))
		}
	}
}

// TestParallelQueryStress hammers one Archive from many goroutines with
// mixed queries and entry lookups. The lazy per-block store open races
// with itself here; run under -race to check the latching.
func TestParallelQueryStress(t *testing.T) {
	lt, _ := loggen.ByName("G")
	stream := lt.Block(3, 3000)
	data, err := Compress(stream, testOptions(30_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() < 4 {
		t.Fatalf("only %d blocks", a.NumBlocks())
	}
	queries := []string{lt.Query, "NOT INFO", "Operation:WriteChunk", "nomatchword"}

	// Reference results computed single-threaded before the race starts.
	want := make(map[string]int)
	for _, q := range queries {
		res, err := a.Query(q, 1)
		if err != nil {
			t.Fatal(err)
		}
		if len(res.Damaged) != 0 {
			t.Fatalf("query %q on pristine archive reports damage", q)
		}
		want[q] = len(res.Lines)
	}
	if want[lt.Query] == 0 {
		t.Fatal("reference query matched nothing")
	}

	var wg sync.WaitGroup
	errc := make(chan error, 64)
	for g := 0; g < 16; g++ {
		g := g
		wg.Add(1)
		go func() {
			defer wg.Done()
			// Each goroutine opens its own Archive view half the time, and
			// shares the common one otherwise — both must be race-free.
			view := a
			if g%2 == 0 {
				v, err := Open(data)
				if err != nil {
					errc <- err
					return
				}
				view = v
			}
			for i := 0; i < 8; i++ {
				q := queries[(g+i)%len(queries)]
				res, err := view.Query(q, 1+((g+i)%4))
				if err != nil {
					errc <- fmt.Errorf("query %q: %v", q, err)
					return
				}
				if len(res.Lines) != want[q] {
					errc <- fmt.Errorf("query %q: %d matches, want %d", q, len(res.Lines), want[q])
					return
				}
				line := (g*131 + i*17) % view.NumLines()
				if _, err := view.Entry(line); err != nil {
					errc <- fmt.Errorf("entry %d: %v", line, err)
					return
				}
			}
		}()
	}
	wg.Wait()
	close(errc)
	for err := range errc {
		t.Error(err)
	}
}
