package archive

import (
	"fmt"

	"loggrep/internal/blockindex"
)

// SetIndexEnabled turns the block-skipping index on or off for this
// opened archive's queries (it is on by default). Disabling it never
// changes results — every block is simply scanned — which is what makes
// index-on/index-off differential testing meaningful.
func (a *Archive) SetIndexEnabled(on bool) { a.indexDisabled.Store(!on) }

// IndexEnabled reports whether queries consult the index (regardless of
// whether one was decoded).
func (a *Archive) IndexEnabled() bool { return !a.indexDisabled.Load() }

// HasIndex reports whether a usable index section was decoded at Open.
func (a *Archive) HasIndex() bool { return !a.index.Empty() }

// IndexStats describes the decoded index sections: sizes, coverage, and
// how many sections were present but damaged.
func (a *Archive) IndexStats() blockindex.Stats {
	if a.index == nil {
		return blockindex.Stats{}
	}
	return a.index.ScanStats
}

// IndexSkipped reports how many blocks the index eliminated across all
// queries so far, split by stage.
func (a *Archive) IndexSkipped() (postings, blooms int) {
	return int(a.indexSkippedPostings.Load()), int(a.indexSkippedBlooms.Load())
}

// IndexSectionRange locates the index tail of a v2 archive: the byte
// offset just past the terminator frame and the framed sections found
// there. Fault-injection and inspection tooling uses it to target exact
// byte regions; a v1 archive or one with no terminator returns offset -1.
func IndexSectionRange(data []byte) (tailOff int, sections []blockindex.SectionInfo, err error) {
	if !hasMagic(data, Magic) {
		if hasMagic(data, MagicV1) {
			return -1, nil, nil
		}
		return -1, nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	frames, err := ScanFrames(data)
	if err != nil {
		return -1, nil, err
	}
	for _, f := range frames {
		if f.Terminator {
			off := f.HeaderOff + headerSize
			return off, blockindex.ScanSections(data[off:]), nil
		}
	}
	return -1, nil, nil
}
