// Package archive stores a log stream as a sequence of independently
// compressed CapsuleBox blocks, the way the paper's production setting
// works (§2: applications write raw logs into 64 MB blocks; each block is
// compressed in the background and queried independently).
//
// The archive extends the paper's Capsule-stamp idea one level up: every
// block carries a block stamp (character-type mask plus maximal line
// length over all its entries), so a query fragment that cannot occur in a
// block skips it without even decoding the block's metadata. Compression
// of blocks and query execution over blocks both parallelize across
// goroutines — the "scale out" direction §8 names as future work.
package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"loggrep/internal/core"
	"loggrep/internal/query"
	"loggrep/internal/rtpattern"
)

// Magic identifies an archive stream.
const Magic = "LGRPARC1"

// ErrCorrupt reports an undecodable archive.
var ErrCorrupt = errors.New("archive: corrupt archive")

// Options configures a Writer.
type Options struct {
	// Core configures per-block compression.
	Core core.Options
	// BlockBytes is the raw-size threshold at which a block is cut
	// (at a line boundary). The paper uses 64 MB; tests use less.
	BlockBytes int
	// Workers is the number of concurrent block compressors
	// (default: GOMAXPROCS).
	Workers int
}

// DefaultOptions mirrors the production setting.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions(), BlockBytes: 64 << 20}
}

// blockMeta is the per-block frame header.
type blockMeta struct {
	numLines int
	rawBytes int
	stamp    rtpattern.Stamp
}

// Writer cuts a raw log stream into blocks and compresses them
// concurrently, writing frames in order.
type Writer struct {
	w    io.Writer
	opts Options

	buf  []byte
	seq  int
	jobs chan job
	done chan result
	errs chan error

	mu       sync.Mutex
	pending  map[int][]byte // seq -> frame, reordering buffer
	next     int
	werr     error
	closed   bool
	wg       sync.WaitGroup
	collDone chan struct{}
}

type job struct {
	seq   int
	block []byte
}

type result struct {
	seq   int
	frame []byte
}

// NewWriter starts a concurrent archive writer. Close must be called to
// flush the final partial block and the terminator.
func NewWriter(w io.Writer, opts Options) (*Writer, error) {
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = DefaultOptions().BlockBytes
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if _, err := w.Write([]byte(Magic)); err != nil {
		return nil, err
	}
	aw := &Writer{
		w:        w,
		opts:     opts,
		jobs:     make(chan job, opts.Workers),
		done:     make(chan result, opts.Workers),
		pending:  make(map[int][]byte),
		collDone: make(chan struct{}),
	}
	for i := 0; i < opts.Workers; i++ {
		aw.wg.Add(1)
		go aw.worker()
	}
	go aw.collector()
	return aw, nil
}

func (aw *Writer) worker() {
	defer aw.wg.Done()
	for j := range aw.jobs {
		box := core.Compress(j.block, aw.opts.Core)
		meta := blockMeta{
			numLines: countLines(j.block),
			rawBytes: len(j.block),
			stamp:    blockStamp(j.block),
		}
		aw.done <- result{seq: j.seq, frame: encodeFrame(meta, box)}
	}
}

// collector writes finished frames in sequence order.
func (aw *Writer) collector() {
	defer close(aw.collDone)
	for r := range aw.done {
		aw.mu.Lock()
		aw.pending[r.seq] = r.frame
		for {
			frame, ok := aw.pending[aw.next]
			if !ok {
				break
			}
			delete(aw.pending, aw.next)
			if aw.werr == nil {
				if _, err := aw.w.Write(frame); err != nil {
					aw.werr = err
				}
			}
			aw.next++
		}
		aw.mu.Unlock()
	}
}

func countLines(block []byte) int {
	n := bytes.Count(block, []byte{'\n'})
	if len(block) > 0 && block[len(block)-1] != '\n' {
		n++
	}
	return n
}

// blockStamp folds every line of the block into a block-level stamp.
func blockStamp(block []byte) rtpattern.Stamp {
	var st rtpattern.Stamp
	st.TypeMask = rtpattern.TypeMaskOf(string(block))
	maxLine, cur := 0, 0
	for _, b := range block {
		if b == '\n' {
			if cur > maxLine {
				maxLine = cur
			}
			cur = 0
			continue
		}
		cur++
	}
	if cur > maxLine {
		maxLine = cur
	}
	st.MaxLen = maxLine
	return st
}

func encodeFrame(meta blockMeta, box []byte) []byte {
	frame := binary.AppendUvarint(nil, uint64(len(box)))
	frame = append(frame, box...)
	frame = binary.AppendUvarint(frame, uint64(meta.numLines))
	frame = binary.AppendUvarint(frame, uint64(meta.rawBytes))
	frame = append(frame, meta.stamp.TypeMask)
	frame = binary.AppendUvarint(frame, uint64(meta.stamp.MaxLen))
	return frame
}

// Write buffers raw log bytes, cutting and dispatching full blocks at line
// boundaries.
func (aw *Writer) Write(p []byte) (int, error) {
	aw.mu.Lock()
	err := aw.werr
	closed := aw.closed
	aw.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if closed {
		return 0, errors.New("archive: write after Close")
	}
	aw.buf = append(aw.buf, p...)
	for len(aw.buf) >= aw.opts.BlockBytes {
		cut := bytes.LastIndexByte(aw.buf[:aw.opts.BlockBytes], '\n')
		if cut < 0 {
			// No newline within the window: wait for one (a single
			// entry larger than the block size is pathological).
			nl := bytes.IndexByte(aw.buf[aw.opts.BlockBytes:], '\n')
			if nl < 0 {
				break
			}
			cut = aw.opts.BlockBytes + nl
		}
		block := make([]byte, cut+1)
		copy(block, aw.buf[:cut+1])
		aw.buf = aw.buf[cut+1:]
		aw.jobs <- job{seq: aw.seq, block: block}
		aw.seq++
	}
	return len(p), nil
}

// Close flushes the final partial block, waits for all workers and writes
// the terminator.
func (aw *Writer) Close() error {
	aw.mu.Lock()
	if aw.closed {
		aw.mu.Unlock()
		return nil
	}
	aw.closed = true
	aw.mu.Unlock()

	if len(aw.buf) > 0 {
		aw.jobs <- job{seq: aw.seq, block: aw.buf}
		aw.seq++
		aw.buf = nil
	}
	close(aw.jobs)
	aw.wg.Wait()
	close(aw.done)
	<-aw.collDone // every frame flushed (or a write error latched)
	aw.mu.Lock()
	err := aw.werr
	aw.mu.Unlock()
	if err != nil {
		return err
	}
	_, err = aw.w.Write(binary.AppendUvarint(nil, 0)) // terminator
	return err
}

// Compress is the convenience one-shot form: the whole stream in memory.
func Compress(stream []byte, opts Options) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(stream); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}

// block is one opened archive block.
type block struct {
	box      []byte
	meta     blockMeta
	lineOff  int // global line number of the block's first line
	storeMu  sync.Mutex
	store    *core.Store
	storeErr error
}

// openStore lazily opens the block's CapsuleBox.
func (b *block) openStore() (*core.Store, error) {
	b.storeMu.Lock()
	defer b.storeMu.Unlock()
	if b.store == nil && b.storeErr == nil {
		b.store, b.storeErr = core.Open(b.box, core.QueryOptions{})
	}
	return b.store, b.storeErr
}

// Archive is an opened multi-block archive.
type Archive struct {
	blocks   []*block
	numLines int
	rawBytes int
	// BlocksSkipped counts blocks eliminated by block stamps across all
	// queries (harness statistic).
	BlocksSkipped int
}

// Open parses an archive produced by Writer/Compress.
func Open(data []byte) (*Archive, error) {
	if len(data) < len(Magic) || string(data[:len(Magic)]) != Magic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	a := &Archive{}
	pos := len(Magic)
	for {
		boxLen, n := binary.Uvarint(data[pos:])
		if n <= 0 {
			return nil, fmt.Errorf("%w: bad frame length", ErrCorrupt)
		}
		pos += n
		if boxLen == 0 {
			break // terminator
		}
		if uint64(len(data)-pos) < boxLen {
			return nil, fmt.Errorf("%w: truncated frame", ErrCorrupt)
		}
		b := &block{box: data[pos : pos+int(boxLen)], lineOff: a.numLines}
		pos += int(boxLen)
		uv := func() (uint64, error) {
			v, n := binary.Uvarint(data[pos:])
			if n <= 0 {
				return 0, fmt.Errorf("%w: bad frame meta", ErrCorrupt)
			}
			pos += n
			return v, nil
		}
		numLines, err := uv()
		if err != nil {
			return nil, err
		}
		rawBytes, err := uv()
		if err != nil {
			return nil, err
		}
		if pos >= len(data) {
			return nil, fmt.Errorf("%w: bad frame stamp", ErrCorrupt)
		}
		mask := data[pos]
		pos++
		maxLen, err := uv()
		if err != nil {
			return nil, err
		}
		b.meta = blockMeta{
			numLines: int(numLines),
			rawBytes: int(rawBytes),
			stamp:    rtpattern.Stamp{TypeMask: mask, MaxLen: int(maxLen)},
		}
		a.numLines += b.meta.numLines
		a.rawBytes += b.meta.rawBytes
		a.blocks = append(a.blocks, b)
	}
	return a, nil
}

// NumBlocks returns the block count.
func (a *Archive) NumBlocks() int { return len(a.blocks) }

// NumLines returns the total entry count.
func (a *Archive) NumLines() int { return a.numLines }

// RawBytes returns the total raw size the archive was built from.
func (a *Archive) RawBytes() int { return a.rawBytes }

// Result is an archive query result with global line numbers.
type Result struct {
	Lines   []int
	Entries []string
}

// mayMatch applies the block stamp: every fragment of every search string
// in the expression must be admissible for the block to need a look. A NOT
// operand cannot prune (its entries may contain anything).
func mayMatch(e query.Expr, st rtpattern.Stamp) bool {
	switch x := e.(type) {
	case *query.And:
		return mayMatch(x.L, st) && mayMatch(x.R, st)
	case *query.Or:
		return mayMatch(x.L, st) || mayMatch(x.R, st)
	case *query.Not:
		return true
	case *query.Search:
		for _, frag := range x.Fragments {
			if !st.Admits(frag) {
				return false
			}
		}
		return true
	}
	return true
}

// Query runs a command over all blocks, parallel across workers, and
// merges results in global line order.
func (a *Archive) Query(command string, workers int) (*Result, error) {
	expr, err := query.Parse(command)
	if err != nil {
		return nil, err
	}
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	type blockRes struct {
		idx int
		res *core.Result
		err error
	}
	var (
		wg   sync.WaitGroup
		work = make(chan int)
		out  = make(chan blockRes, len(a.blocks))
	)
	skipped := 0
	var skipMu sync.Mutex
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for idx := range work {
				b := a.blocks[idx]
				if !mayMatch(expr, b.meta.stamp) {
					skipMu.Lock()
					skipped++
					skipMu.Unlock()
					continue
				}
				st, err := b.openStore()
				if err != nil {
					out <- blockRes{idx: idx, err: err}
					continue
				}
				res, err := st.Query(command)
				out <- blockRes{idx: idx, res: res, err: err}
			}
		}()
	}
	for idx := range a.blocks {
		work <- idx
	}
	close(work)
	wg.Wait()
	close(out)

	byBlock := make([]*core.Result, len(a.blocks))
	for r := range out {
		if r.err != nil {
			return nil, r.err
		}
		byBlock[r.idx] = r.res
	}
	a.BlocksSkipped += skipped

	res := &Result{}
	for idx, br := range byBlock {
		if br == nil {
			continue
		}
		off := a.blocks[idx].lineOff
		for i, line := range br.Lines {
			res.Lines = append(res.Lines, off+line)
			res.Entries = append(res.Entries, br.Entries[i])
		}
	}
	return res, nil
}

// Entry reconstructs one entry by its global line number.
func (a *Archive) Entry(line int) (string, error) {
	if line < 0 || line >= a.numLines {
		return "", fmt.Errorf("archive: line %d out of range", line)
	}
	// Blocks are ordered by lineOff; binary search would do, but block
	// counts are small.
	for _, b := range a.blocks {
		if line < b.lineOff+b.meta.numLines {
			st, err := b.openStore()
			if err != nil {
				return "", err
			}
			return st.ReconstructLine(line - b.lineOff)
		}
	}
	return "", fmt.Errorf("archive: line %d beyond blocks", line)
}

// ReconstructAll restores the entire raw stream, block by block.
func (a *Archive) ReconstructAll() ([]string, error) {
	out := make([]string, 0, a.numLines)
	for _, b := range a.blocks {
		st, err := b.openStore()
		if err != nil {
			return nil, err
		}
		lines, err := st.ReconstructAll()
		if err != nil {
			return nil, err
		}
		out = append(out, lines...)
	}
	return out, nil
}
