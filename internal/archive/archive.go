package archive

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"runtime"
	"sync"

	"loggrep/internal/blockindex"
	"loggrep/internal/core"
	"loggrep/internal/rtpattern"
)

// Magic identifies a v2 archive stream (checksummed frames).
const Magic = "LGRPARC2"

// MagicV1 identifies the legacy v1 stream (no checksums); Open still
// accepts it.
const MagicV1 = "LGRPARC1"

// IsArchive reports whether data begins with any supported archive magic.
func IsArchive(data []byte) bool {
	return hasMagic(data, Magic) || hasMagic(data, MagicV1)
}

// ErrCorrupt reports an undecodable archive.
var ErrCorrupt = errors.New("archive: corrupt archive")

// ErrChecksum reports a frame whose stored CRC32C does not match its
// bytes. It wraps ErrCorrupt.
var ErrChecksum = fmt.Errorf("%w: checksum mismatch", ErrCorrupt)

// Options configures a Writer.
type Options struct {
	// Core configures per-block compression.
	Core core.Options
	// BlockBytes is the raw-size threshold at which a block is cut
	// (at a line boundary). The paper uses 64 MB; tests use less.
	BlockBytes int
	// Workers is the number of concurrent block compressors
	// (default: GOMAXPROCS).
	Workers int
	// FormatV1 writes the legacy checksum-free v1 stream, for
	// compatibility testing and for measuring checksum overhead.
	FormatV1 bool
	// NoIndex disables the block-skipping index sections normally
	// appended after the terminator (v1 streams never carry them).
	NoIndex bool
}

// DefaultOptions mirrors the production setting.
func DefaultOptions() Options {
	return Options{Core: core.DefaultOptions(), BlockBytes: 64 << 20}
}

// blockMeta is the per-block frame metadata.
type blockMeta struct {
	numLines int
	rawBytes int
	stamp    rtpattern.Stamp
}

// Writer cuts a raw log stream into blocks and compresses them
// concurrently, writing frames in order.
type Writer struct {
	w    io.Writer
	opts Options

	buf  []byte
	seq  int
	jobs chan job
	done chan result
	errs chan error

	mu       sync.Mutex
	pending  map[int]result // seq -> finished block, reordering buffer
	next     int
	lines    int // running global line count, becomes the terminator stamp
	werr     error
	closed   bool
	wg       sync.WaitGroup
	collDone chan struct{}
	// index accumulates block scans for the skip-index sections Close
	// appends after the terminator; nil when disabled or FormatV1.
	index *blockindex.Builder
}

type job struct {
	seq   int
	block []byte
}

type result struct {
	seq  int
	meta blockMeta
	box  []byte
	scan *blockindex.BlockScan // nil when indexing is off
}

// NewWriter starts a concurrent archive writer. Close must be called to
// flush the final partial block and the terminator.
func NewWriter(w io.Writer, opts Options) (*Writer, error) {
	if opts.BlockBytes <= 0 {
		opts.BlockBytes = DefaultOptions().BlockBytes
	}
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	magic := Magic
	if opts.FormatV1 {
		magic = MagicV1
	}
	if _, err := w.Write([]byte(magic)); err != nil {
		return nil, err
	}
	aw := &Writer{
		w:        w,
		opts:     opts,
		jobs:     make(chan job, opts.Workers),
		done:     make(chan result, opts.Workers),
		pending:  make(map[int]result),
		collDone: make(chan struct{}),
	}
	if !opts.FormatV1 && !opts.NoIndex {
		aw.index = blockindex.NewBuilder()
	}
	for i := 0; i < opts.Workers; i++ {
		aw.wg.Add(1)
		go aw.worker()
	}
	go aw.collector()
	return aw, nil
}

func (aw *Writer) worker() {
	defer aw.wg.Done()
	for j := range aw.jobs {
		box := core.Compress(j.block, aw.opts.Core)
		meta := blockMeta{
			numLines: countLines(j.block),
			rawBytes: len(j.block),
			stamp:    blockStamp(j.block),
		}
		var scan *blockindex.BlockScan
		if aw.index != nil {
			scan = blockindex.ScanBlock(j.block)
		}
		aw.done <- result{seq: j.seq, meta: meta, box: box, scan: scan}
	}
}

// collector writes finished frames in sequence order. Frames are encoded
// here rather than in the workers because the v2 header carries the
// block's absolute line offset, which is only known once every earlier
// block has been counted.
func (aw *Writer) collector() {
	defer close(aw.collDone)
	for r := range aw.done {
		aw.mu.Lock()
		aw.pending[r.seq] = r
		for {
			next, ok := aw.pending[aw.next]
			if !ok {
				break
			}
			delete(aw.pending, aw.next)
			if aw.werr == nil {
				aw.werr = aw.writeFrame(next.meta, next.box)
			}
			if aw.index != nil && next.scan != nil {
				aw.index.Add(uint64(aw.lines), next.meta.numLines, len(next.box), next.scan)
			}
			aw.lines += next.meta.numLines
			aw.next++
		}
		aw.mu.Unlock()
	}
}

// writeFrame emits one block in the configured format. Caller holds aw.mu.
func (aw *Writer) writeFrame(meta blockMeta, box []byte) error {
	if aw.opts.FormatV1 {
		_, err := aw.w.Write(encodeFrameV1(meta, box))
		return err
	}
	if _, err := aw.w.Write(encodeHeader(meta, aw.lines, box)); err != nil {
		return err
	}
	_, err := aw.w.Write(box)
	return err
}

func countLines(block []byte) int {
	n := bytes.Count(block, []byte{'\n'})
	if len(block) > 0 && block[len(block)-1] != '\n' {
		n++
	}
	return n
}

// blockStamp folds every line of the block into a block-level stamp.
func blockStamp(block []byte) rtpattern.Stamp {
	var st rtpattern.Stamp
	st.TypeMask = rtpattern.TypeMaskOf(string(block))
	maxLine, cur := 0, 0
	for _, b := range block {
		if b == '\n' {
			if cur > maxLine {
				maxLine = cur
			}
			cur = 0
			continue
		}
		cur++
	}
	if cur > maxLine {
		maxLine = cur
	}
	st.MaxLen = maxLine
	return st
}

func encodeFrameV1(meta blockMeta, box []byte) []byte {
	frame := binary.AppendUvarint(nil, uint64(len(box)))
	frame = append(frame, box...)
	frame = binary.AppendUvarint(frame, uint64(meta.numLines))
	frame = binary.AppendUvarint(frame, uint64(meta.rawBytes))
	frame = append(frame, meta.stamp.TypeMask)
	frame = binary.AppendUvarint(frame, uint64(meta.stamp.MaxLen))
	return frame
}

// Write buffers raw log bytes, cutting and dispatching full blocks at line
// boundaries.
func (aw *Writer) Write(p []byte) (int, error) {
	aw.mu.Lock()
	err := aw.werr
	closed := aw.closed
	aw.mu.Unlock()
	if err != nil {
		return 0, err
	}
	if closed {
		return 0, errors.New("archive: write after Close")
	}
	aw.buf = append(aw.buf, p...)
	for len(aw.buf) >= aw.opts.BlockBytes {
		cut := bytes.LastIndexByte(aw.buf[:aw.opts.BlockBytes], '\n')
		if cut < 0 {
			// No newline within the window: wait for one (a single
			// entry larger than the block size is pathological).
			nl := bytes.IndexByte(aw.buf[aw.opts.BlockBytes:], '\n')
			if nl < 0 {
				break
			}
			cut = aw.opts.BlockBytes + nl
		}
		block := make([]byte, cut+1)
		copy(block, aw.buf[:cut+1])
		aw.buf = aw.buf[cut+1:]
		aw.jobs <- job{seq: aw.seq, block: block}
		aw.seq++
	}
	return len(p), nil
}

// Close flushes the final partial block, waits for all workers and writes
// the terminator.
func (aw *Writer) Close() error {
	aw.mu.Lock()
	if aw.closed {
		aw.mu.Unlock()
		return nil
	}
	aw.closed = true
	aw.mu.Unlock()

	if len(aw.buf) > 0 {
		aw.jobs <- job{seq: aw.seq, block: aw.buf}
		aw.seq++
		aw.buf = nil
	}
	close(aw.jobs)
	aw.wg.Wait()
	close(aw.done)
	<-aw.collDone // every frame flushed (or a write error latched)
	aw.mu.Lock()
	err := aw.werr
	lines := aw.lines
	aw.mu.Unlock()
	if err != nil {
		return err
	}
	if aw.opts.FormatV1 {
		_, err = aw.w.Write(binary.AppendUvarint(nil, 0))
		return err
	}
	// The v2 terminator is a checksummed empty frame carrying the total
	// line count, so truncation at a frame boundary is detectable.
	if _, err = aw.w.Write(encodeHeader(blockMeta{}, lines, nil)); err != nil {
		return err
	}
	// Index sections ride after the terminator: readers that predate them
	// (or find them damaged) stop at the terminator and scan every block.
	if aw.index != nil {
		if sections := aw.index.Sections(); len(sections) > 0 {
			if _, err = aw.w.Write(sections); err != nil {
				return err
			}
			mArchiveIndexBytes.Add(int64(len(sections)))
			if aw.index.VocabOverflowed() {
				mArchiveIndexVocabOverflow.Inc()
			}
		}
	}
	return nil
}

// Compress is the convenience one-shot form: the whole stream in memory.
func Compress(stream []byte, opts Options) ([]byte, error) {
	var buf bytes.Buffer
	w, err := NewWriter(&buf, opts)
	if err != nil {
		return nil, err
	}
	if _, err := w.Write(stream); err != nil {
		return nil, err
	}
	if err := w.Close(); err != nil {
		return nil, err
	}
	return buf.Bytes(), nil
}
