package archive

import (
	"sort"
	"testing"

	"loggrep/internal/loggen"
)

// fuzzSeedArchives builds small archives in both formats plus damaged
// variants — the corpus every archive fuzz target starts from.
func fuzzSeedArchives(f *testing.F) [][]byte {
	f.Helper()
	lt, _ := loggen.ByName("A")
	stream := lt.Block(1, 150)
	opts := testOptions(3_000) // several tiny blocks
	opts.Workers = 1
	v2, err := Compress(stream, opts)
	if err != nil {
		f.Fatal(err)
	}
	opts.NoIndex = true
	noIx, err := Compress(stream, opts)
	if err != nil {
		f.Fatal(err)
	}
	opts.NoIndex = false
	opts.FormatV1 = true
	v1, err := Compress(stream, opts)
	if err != nil {
		f.Fatal(err)
	}
	flipped := append([]byte(nil), v2...)
	flipped[len(flipped)/3] ^= 0x10
	headerHit := append([]byte(nil), v2...)
	headerHit[len(Magic)+4] ^= 0x01
	indexHit := append([]byte(nil), v2...)
	if tailOff, _, err := IndexSectionRange(indexHit); err == nil && tailOff >= 0 && tailOff < len(indexHit) {
		indexHit[tailOff+(len(indexHit)-tailOff)/2] ^= 0x20
	}
	return [][]byte{
		v2, // carries index sections after the terminator
		v1,
		noIx,           // v2 without index sections
		v2[:len(v2)/2], // truncated mid-stream
		v2[:len(v2)-1], // terminator clipped
		flipped,        // payload or header bit flip
		headerHit,      // first frame header bit flip
		indexHit,       // index tail bit flip
		[]byte(Magic),
		[]byte(MagicV1),
		nil,
	}
}

// FuzzOpenArchive: arbitrary bytes must never panic Open or the lazy
// per-block verification behind Verify, and whatever opens must expose a
// consistent line space.
func FuzzOpenArchive(f *testing.F) {
	for _, seed := range fuzzSeedArchives(f) {
		f.Add(seed)
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		a, err := Open(data)
		if err != nil {
			return
		}
		if a.NumLines() < 0 {
			t.Fatalf("negative line count %d", a.NumLines())
		}
		prevEnd := 0
		for _, b := range a.blocks {
			if b.lineOff < prevEnd {
				t.Fatalf("blocks overlap or unsorted at line %d", b.lineOff)
			}
			prevEnd = b.lineOff + b.meta.numLines
			if prevEnd > a.NumLines() {
				t.Fatalf("block ends at %d beyond NumLines %d", prevEnd, a.NumLines())
			}
		}
		a.Verify(false)
		if a.NumLines() > 0 {
			a.Entry(0)
			a.Entry(a.NumLines() - 1)
		}
	})
}

// FuzzArchiveQuery: a query over arbitrary archive bytes must never panic
// or return an inconsistent result, whatever the corruption.
func FuzzArchiveQuery(f *testing.F) {
	seeds := fuzzSeedArchives(f)
	for _, cmd := range []string{"ERROR", "req AND NOT state:503", "a*b"} {
		for _, seed := range seeds {
			f.Add(seed, cmd, uint8(2))
		}
	}
	f.Fuzz(func(t *testing.T, data []byte, cmd string, workers uint8) {
		a, err := Open(data)
		if err != nil {
			return
		}
		res, err := a.Query(cmd, int(workers%5))
		if err != nil {
			return // unparsable command
		}
		if len(res.Lines) != len(res.Entries) {
			t.Fatalf("%d lines but %d entries", len(res.Lines), len(res.Entries))
		}
		if !sort.IntsAreSorted(res.Lines) {
			t.Fatal("result lines not in global order")
		}
		for _, l := range res.Lines {
			if l < 0 || l >= a.NumLines() {
				t.Fatalf("match line %d outside [0,%d)", l, a.NumLines())
			}
		}
	})
}
