package archive

import (
	"testing"

	"loggrep/internal/faultinject"
	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
)

// faultOracle holds the pristine archive's ground truth: every line and
// every query's exact match set.
type faultOracle struct {
	lines   []string
	queries []string
	matches map[string]map[int]string // query -> global line -> entry
}

func buildFaultOracle(t *testing.T, lines []string, queries []string) *faultOracle {
	t.Helper()
	or := &faultOracle{lines: lines, queries: queries, matches: map[string]map[int]string{}}
	for _, q := range queries {
		m := map[int]string{}
		for _, l := range oracle(t, lines, q) {
			m[l] = lines[l]
		}
		if len(m) == 0 {
			t.Fatalf("query %q matches nothing; sweep would prove nothing", q)
		}
		or.matches[q] = m
	}
	return or
}

// checkCorrupted asserts the corruption trichotomy on one damaged buffer:
// either Open fails cleanly, or the damage is quarantined — every reported
// match is byte-identical to the pristine archive's, every pristine match
// outside the reported damage is present, and lines from untouched blocks
// reconstruct exactly. Never a wrong match, never silent loss.
func checkCorrupted(t *testing.T, name string, data []byte, or *faultOracle, deep bool) {
	t.Helper()
	a, err := Open(data)
	if err != nil {
		return // clean refusal is the first acceptable arm
	}
	for _, q := range or.queries {
		res, err := a.Query(q, 2)
		if err != nil {
			t.Errorf("%s: query %q failed instead of quarantining: %v", name, q, err)
			continue
		}
		lost := func(line int) bool {
			if line >= a.NumLines() {
				return true
			}
			for _, d := range res.Damaged {
				if d.NumLines == 0 {
					if line >= d.FirstLine {
						return true
					}
				} else if line >= d.FirstLine && line < d.FirstLine+d.NumLines {
					return true
				}
			}
			return false
		}
		got := map[int]bool{}
		for i, l := range res.Lines {
			want, ok := or.matches[q][l]
			if !ok {
				t.Errorf("%s: query %q: wrong match at line %d: %q", name, q, l, res.Entries[i])
				continue
			}
			if res.Entries[i] != want {
				t.Errorf("%s: query %q: line %d reconstructed as %q, want %q", name, q, l, res.Entries[i], want)
			}
			got[l] = true
		}
		for l := range or.matches[q] {
			if !got[l] && !lost(l) {
				t.Errorf("%s: query %q: match at line %d missing with no damage report", name, q, l)
			}
		}
	}
	// Entry must either reconstruct the pristine line or refuse — never
	// return different bytes.
	for _, l := range []int{0, len(or.lines) / 2, len(or.lines) - 1} {
		if l >= a.NumLines() {
			continue // truncated away; the damage report covers it
		}
		if got, err := a.Entry(l); err == nil && got != or.lines[l] {
			t.Errorf("%s: Entry(%d) = %q, want %q", name, l, got, or.lines[l])
		}
	}
	if !deep {
		return
	}
	lines, damaged := a.ReconstructPartial()
	isLost := func(line int) bool {
		for _, d := range damaged {
			if d.NumLines > 0 && line >= d.FirstLine && line < d.FirstLine+d.NumLines {
				return true
			}
		}
		return false
	}
	var want []string
	for i := 0; i < a.NumLines() && i < len(or.lines); i++ {
		if !isLost(i) {
			want = append(want, or.lines[i])
		}
	}
	if len(lines) != len(want) {
		t.Errorf("%s: ReconstructPartial returned %d lines, damage report implies %d", name, len(lines), len(want))
		return
	}
	for i := range want {
		if lines[i] != want[i] {
			t.Errorf("%s: ReconstructPartial line %d = %q, want %q", name, i, lines[i], want[i])
			return
		}
	}
	if len(damaged) > 0 {
		if _, err := a.ReconstructAll(); err == nil {
			t.Errorf("%s: ReconstructAll succeeded despite damage", name)
		}
	}
}

// TestFaultInjectionSweep corrupts every frame of a multi-block archive —
// header bits, payload bits, zero runs, truncations at and inside frame
// boundaries, and frame reorderings — and asserts the trichotomy for each.
func TestFaultInjectionSweep(t *testing.T) {
	lt, _ := loggen.ByName("G")
	stream := lt.Block(42, 3000)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(60_000))
	if err != nil {
		t.Fatal(err)
	}
	a, err := Open(data)
	if err != nil {
		t.Fatal(err)
	}
	if a.NumBlocks() < 4 {
		t.Fatalf("sweep archive has %d blocks, want >= 4", a.NumBlocks())
	}
	frames, err := ScanFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	or := buildFaultOracle(t, lines, []string{lt.Query, "Operation:WriteChunk", "NOT INFO"})

	// The pristine archive itself must pass with zero damage.
	checkCorrupted(t, "pristine", data, or, true)
	if d := a.Verify(true); d != nil {
		t.Fatalf("pristine archive reports damage: %v", d)
	}

	headerStride := 1
	payloadSamples := 8
	if testing.Short() {
		headerStride, payloadSamples = 5, 3
	}

	var cs []faultinject.Corruptor
	cs = append(cs,
		faultinject.BitFlip(0, 3), // magic
		faultinject.Truncate(0),
		faultinject.Truncate(len(Magic)/2),
	)
	for fi, fr := range frames {
		hdrLen := fr.PayloadOff - fr.HeaderOff
		for off := fr.HeaderOff; off < fr.PayloadOff; off += headerStride {
			cs = append(cs, faultinject.BitFlip(off, uint(off)))
		}
		for k := 0; k < payloadSamples && fr.PayloadLen > 0; k++ {
			cs = append(cs, faultinject.BitFlip(fr.PayloadOff+k*fr.PayloadLen/payloadSamples, uint(k)))
		}
		cs = append(cs, faultinject.ZeroRun(fr.HeaderOff, hdrLen))
		if fr.PayloadLen > 8 {
			cs = append(cs, faultinject.ZeroRun(fr.PayloadOff+fr.PayloadLen/3, 8))
		}
		cs = append(cs,
			faultinject.Truncate(fr.HeaderOff),
			faultinject.Truncate(fr.HeaderOff+hdrLen/2),
		)
		if fr.PayloadLen > 0 {
			cs = append(cs, faultinject.Truncate(fr.PayloadOff+fr.PayloadLen/2))
		}
		if fi+1 < len(frames) {
			nx := frames[fi+1]
			cs = append(cs, faultinject.SwapRanges(
				fr.HeaderOff, fr.PayloadOff-fr.HeaderOff+fr.PayloadLen,
				nx.HeaderOff, nx.PayloadOff-nx.HeaderOff+nx.PayloadLen))
		}
	}

	for i, c := range cs {
		checkCorrupted(t, c.Name, c.Apply(data), or, i%5 == 0)
		if t.Failed() {
			t.Fatalf("stopping sweep after first failing corruptor (of %d)", len(cs))
		}
	}
	t.Logf("sweep: %d corruptions over %d frames", len(cs), len(frames))
}

// TestFaultSwapIsTransparent pins the strongest property the absolute
// line offsets buy: swapping two complete frames loses nothing — every
// block still answers under its pristine global line numbers.
func TestFaultSwapIsTransparent(t *testing.T) {
	lt, _ := loggen.ByName("A")
	stream := lt.Block(7, 4000)
	lines := logparse.SplitLines(stream)
	data, err := Compress(stream, testOptions(80_000))
	if err != nil {
		t.Fatal(err)
	}
	frames, err := ScanFrames(data)
	if err != nil {
		t.Fatal(err)
	}
	if len(frames) < 3 {
		t.Fatalf("need >= 2 data frames, got %d", len(frames)-1)
	}
	f0, f1 := frames[0], frames[1]
	swapped := faultinject.SwapRanges(
		f0.HeaderOff, f0.PayloadOff-f0.HeaderOff+f0.PayloadLen,
		f1.HeaderOff, f1.PayloadOff-f1.HeaderOff+f1.PayloadLen).Apply(data)
	a, err := Open(swapped)
	if err != nil {
		t.Fatal(err)
	}
	if d := a.Verify(true); d != nil {
		t.Fatalf("swapped frames reported as damage: %v", d)
	}
	got, err := a.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(lines) {
		t.Fatalf("reconstructed %d lines, want %d", len(got), len(lines))
	}
	for i := range lines {
		if got[i] != lines[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], lines[i])
		}
	}
}
