package costmodel

import "fmt"

// GB is 10^9 bytes, matching cloud-provider billing.
const GB = 1e9

// TB is 10^12 bytes.
const TB = 1e12

// Params are the billing constants. Defaults come from §6 of the paper.
type Params struct {
	// StoragePerGBMonth is the storage price ($/GB/month), erasure coding
	// included. Paper: $0.017.
	StoragePerGBMonth float64
	// Months is the retention duration. Paper: 6 months.
	Months float64
	// CPUPerHour is the compute price for one CPU ($/hour). Paper: $0.016.
	CPUPerHour float64
	// Queries is how many queries run over the retention period.
	// Paper default: 100.
	Queries float64
}

// Default returns the paper's parameters.
func Default() Params {
	return Params{StoragePerGBMonth: 0.017, Months: 6, CPUPerHour: 0.016, Queries: 100}
}

// Metrics are the measured properties of one system on one workload.
type Metrics struct {
	// RawBytes is the uncompressed size of the measured sample.
	RawBytes int64
	// CompressedBytes is its compressed size.
	CompressedBytes int64
	// CompressSeconds is single-CPU time to compress the sample.
	CompressSeconds float64
	// QuerySeconds is single-CPU latency of one query on the sample.
	QuerySeconds float64
}

// Ratio returns the compression ratio.
func (m Metrics) Ratio() float64 {
	if m.CompressedBytes == 0 {
		return 0
	}
	return float64(m.RawBytes) / float64(m.CompressedBytes)
}

// CompressionMBps returns compression speed in MB/s.
func (m Metrics) CompressionMBps() float64 {
	if m.CompressSeconds == 0 {
		return 0
	}
	return float64(m.RawBytes) / 1e6 / m.CompressSeconds
}

// Breakdown is the per-component cost in dollars.
type Breakdown struct {
	Storage     float64
	Compression float64
	Query       float64
}

// Total sums the components.
func (b Breakdown) Total() float64 { return b.Storage + b.Compression + b.Query }

// String renders the breakdown.
func (b Breakdown) String() string {
	return fmt.Sprintf("storage=$%.3f compression=$%.3f query=$%.3f total=$%.3f",
		b.Storage, b.Compression, b.Query, b.Total())
}

// CostPerTB extrapolates measured metrics to the cost of storing and
// querying one TB of raw logs, the unit Figure 8 reports. Compression time
// and query latency scale linearly with data size for every system under
// test (all are single-pass over their candidate sets).
func (p Params) CostPerTB(m Metrics) Breakdown {
	if m.RawBytes == 0 {
		return Breakdown{}
	}
	scale := TB / float64(m.RawBytes)
	compressedGB := float64(m.CompressedBytes) * scale / GB
	cpuHourPrice := p.CPUPerHour
	return Breakdown{
		Storage:     p.StoragePerGBMonth * p.Months * compressedGB,
		Compression: cpuHourPrice * (m.CompressSeconds * scale / 3600),
		Query:       cpuHourPrice * (m.QuerySeconds * scale / 3600) * p.Queries,
	}
}

// CrossoverQueries returns the query count at which system a's total cost
// equals system b's, assuming both scale linearly in query count. It
// returns (q, true) when a positive finite crossover exists: for q queries
// above (below) the returned value, the system with the cheaper marginal
// query cost wins. The paper uses this to show how many queries ES needs
// to beat LogGrep (§6.1: 7,447–542,194).
func (p Params) CrossoverQueries(a, b Metrics) (float64, bool) {
	pa := p
	pa.Queries = 0
	fixedA := pa.CostPerTB(a).Total()
	fixedB := pa.CostPerTB(b).Total()
	scaleA := TB / float64(a.RawBytes)
	scaleB := TB / float64(b.RawBytes)
	perQueryA := p.CPUPerHour * a.QuerySeconds * scaleA / 3600
	perQueryB := p.CPUPerHour * b.QuerySeconds * scaleB / 3600
	if perQueryA == perQueryB {
		return 0, false
	}
	q := (fixedB - fixedA) / (perQueryA - perQueryB)
	if q <= 0 {
		return 0, false
	}
	return q, true
}
