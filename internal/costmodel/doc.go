// Package costmodel implements Equation 1 of the paper: the overall cost of
// a near-line log storage system over its retention period, combining
// storage cost for the compressed data, computation cost to compress, and
// computation cost to execute queries.
//
//	C_total = C_storage × Duration × Size/CompressionRatio
//	        + C_cpu × Size/CompressionSpeed
//	        + C_cpu × QueryLatency × QueryFrequency
package costmodel
