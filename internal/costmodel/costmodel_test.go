package costmodel

import (
	"math"
	"testing"
	"testing/quick"
)

func TestDefaultsMatchPaper(t *testing.T) {
	p := Default()
	if p.StoragePerGBMonth != 0.017 || p.Months != 6 || p.CPUPerHour != 0.016 || p.Queries != 100 {
		t.Fatalf("defaults = %+v", p)
	}
}

func TestRatioAndSpeed(t *testing.T) {
	m := Metrics{RawBytes: 100e6, CompressedBytes: 10e6, CompressSeconds: 10}
	if m.Ratio() != 10 {
		t.Fatalf("ratio = %v", m.Ratio())
	}
	if m.CompressionMBps() != 10 {
		t.Fatalf("speed = %v", m.CompressionMBps())
	}
	if (Metrics{}).Ratio() != 0 || (Metrics{}).CompressionMBps() != 0 {
		t.Fatal("zero metrics should yield zero derived values")
	}
}

func TestCostPerTBKnownValues(t *testing.T) {
	// 1 TB raw at ratio 10 → 100 GB stored for 6 months at $0.017:
	// storage = 0.017*6*100 = $10.20.
	// Compression at 100 MB/s → 10^12/10^8 s = 10^4 s = 2.7778 h → $0.04444.
	// One query takes 3600 s per TB → 1 h × $0.016 × 100 queries = $1.60.
	m := Metrics{
		RawBytes:        1e12,
		CompressedBytes: 1e11,
		CompressSeconds: 1e4,
		QuerySeconds:    3600,
	}
	b := Default().CostPerTB(m)
	if math.Abs(b.Storage-10.20) > 1e-9 {
		t.Errorf("storage = %v, want 10.20", b.Storage)
	}
	if math.Abs(b.Compression-0.016*1e4/3600) > 1e-9 {
		t.Errorf("compression = %v", b.Compression)
	}
	if math.Abs(b.Query-1.60) > 1e-9 {
		t.Errorf("query = %v, want 1.60", b.Query)
	}
	if math.Abs(b.Total()-(b.Storage+b.Compression+b.Query)) > 1e-12 {
		t.Error("total mismatch")
	}
}

func TestCostScalesFromSample(t *testing.T) {
	// Measuring on a 1 GB sample must extrapolate to the same $/TB as
	// measuring on the full TB with proportional metrics.
	full := Metrics{RawBytes: 1e12, CompressedBytes: 5e10, CompressSeconds: 2e4, QuerySeconds: 100}
	sample := Metrics{RawBytes: 1e9, CompressedBytes: 5e7, CompressSeconds: 20, QuerySeconds: 0.1}
	bf := Default().CostPerTB(full)
	bs := Default().CostPerTB(sample)
	if math.Abs(bf.Total()-bs.Total()) > 1e-9 {
		t.Fatalf("full=%v sample=%v", bf.Total(), bs.Total())
	}
}

func TestCrossoverQueries(t *testing.T) {
	p := Default()
	// ES-like: cheap queries, huge storage. LG-like: cheap storage,
	// pricier queries.
	es := Metrics{RawBytes: 1e9, CompressedBytes: 2e9, CompressSeconds: 100, QuerySeconds: 0.01}
	lg := Metrics{RawBytes: 1e9, CompressedBytes: 5e7, CompressSeconds: 50, QuerySeconds: 1}
	q, ok := p.CrossoverQueries(lg, es)
	if !ok {
		t.Fatal("no crossover found")
	}
	// At q queries the totals must be equal.
	pa := p
	pa.Queries = q
	ca := pa.CostPerTB(lg).Total()
	cb := pa.CostPerTB(es).Total()
	if math.Abs(ca-cb)/ca > 1e-9 {
		t.Fatalf("costs at crossover differ: %v vs %v", ca, cb)
	}
	// Below the crossover LG must be cheaper.
	pa.Queries = q / 2
	if pa.CostPerTB(lg).Total() >= pa.CostPerTB(es).Total() {
		t.Fatal("LG should win below the crossover")
	}
}

func TestCrossoverDegenerate(t *testing.T) {
	p := Default()
	m := Metrics{RawBytes: 1e9, CompressedBytes: 1e8, CompressSeconds: 10, QuerySeconds: 1}
	if _, ok := p.CrossoverQueries(m, m); ok {
		t.Fatal("identical systems cannot cross over")
	}
	// A system worse in both dimensions never crosses over.
	worse := Metrics{RawBytes: 1e9, CompressedBytes: 2e8, CompressSeconds: 10, QuerySeconds: 2}
	if _, ok := p.CrossoverQueries(m, worse); ok {
		t.Fatal("dominated system cannot cross over")
	}
}

// Property: cost is monotone in every metric.
func TestQuickCostMonotone(t *testing.T) {
	p := Default()
	f := func(comp uint32, qsec uint16) bool {
		base := Metrics{RawBytes: 1e9, CompressedBytes: 1e8, CompressSeconds: 10, QuerySeconds: 1}
		grown := base
		grown.CompressedBytes += int64(comp % 1e6)
		grown.QuerySeconds += float64(qsec) / 100
		return p.CostPerTB(grown).Total() >= p.CostPerTB(base).Total()
	}
	if err := quick.Check(f, nil); err != nil {
		t.Fatal(err)
	}
}

func TestZeroRawBytes(t *testing.T) {
	if b := Default().CostPerTB(Metrics{}); b.Total() != 0 {
		t.Fatal("zero raw bytes should cost nothing")
	}
}
