package loggrep_test

import (
	"strings"
	"testing"

	"loggrep"
	"loggrep/internal/loggen"
	"loggrep/internal/logparse"
	"loggrep/internal/query"
)

// TestPublicAPIRoundTrip exercises the exported surface end to end.
func TestPublicAPIRoundTrip(t *testing.T) {
	lt, _ := loggen.ByName("A")
	block := lt.Block(2, 3000)
	data := loggrep.Compress(block, loggrep.DefaultOptions())
	if len(data) >= len(block) {
		t.Fatalf("no compression: %d -> %d", len(block), len(data))
	}
	st, err := loggrep.Open(data, loggrep.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	got, err := st.ReconstructAll()
	if err != nil {
		t.Fatal(err)
	}
	want := logparse.SplitLines(block)
	if len(got) != len(want) {
		t.Fatalf("lines %d != %d", len(got), len(want))
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("line %d: %q != %q", i, got[i], want[i])
		}
	}
}

// TestTable1Queries: every log type's Table-1 query, LogGrep vs the naive
// oracle — the end-to-end claim of the paper (exact results).
func TestTable1Queries(t *testing.T) {
	for _, lt := range loggen.All() {
		lt := lt
		t.Run(lt.Name, func(t *testing.T) {
			t.Parallel()
			block := lt.Block(4, 2500)
			lines := logparse.SplitLines(block)
			st, err := loggrep.Open(loggrep.Compress(block, loggrep.DefaultOptions()), loggrep.QueryOptions{})
			if err != nil {
				t.Fatal(err)
			}
			res, err := st.Query(lt.Query)
			if err != nil {
				t.Fatal(err)
			}
			want := oracle(t, lines, lt.Query)
			if len(res.Lines) != len(want) {
				t.Fatalf("query %q: %d matches, want %d", lt.Query, len(res.Lines), len(want))
			}
			for i := range want {
				if res.Lines[i] != want[i] || res.Entries[i] != lines[want[i]] {
					t.Fatalf("query %q: mismatch at %d", lt.Query, i)
				}
			}
			if len(want) == 0 {
				t.Fatalf("query %q matched nothing — workload broken", lt.Query)
			}
		})
	}
}

// TestStaticOnlyOptions checks the LogGrep-SP mode is wired through the
// public API.
func TestStaticOnlyOptions(t *testing.T) {
	opts := loggrep.StaticOnlyOptions()
	if !opts.StaticOnly {
		t.Fatal("StaticOnlyOptions not static-only")
	}
	lt, _ := loggen.ByName("Hdfs")
	block := lt.Block(1, 1000)
	st, err := loggrep.Open(loggrep.Compress(block, opts), loggrep.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := st.Query(lt.Query)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) == 0 {
		t.Fatal("SP mode found nothing")
	}
}

func oracle(t *testing.T, lines []string, command string) []int {
	t.Helper()
	expr, err := query.Parse(command)
	if err != nil {
		t.Fatal(err)
	}
	var match func(e query.Expr, l string) bool
	match = func(e query.Expr, l string) bool {
		switch x := e.(type) {
		case *query.And:
			return match(x.L, l) && match(x.R, l)
		case *query.Or:
			return match(x.L, l) || match(x.R, l)
		case *query.Not:
			return !match(x.X, l)
		case *query.Search:
			return x.MatchEntry(l)
		}
		return false
	}
	var out []int
	for i, l := range lines {
		if match(expr, l) {
			out = append(out, i)
		}
	}
	return out
}

// TestDocExampleCompiles keeps the package doc's snippet honest.
func TestDocExampleCompiles(t *testing.T) {
	raw := []byte(strings.Join([]string{
		"2021-01-04 12:00:01 ERROR dst:11.8.4.1 state:500",
		"2021-01-04 12:00:02 INFO dst:11.8.4.2 state:200",
		"2021-01-04 12:00:03 ERROR dst:11.9.4.3 state:503",
	}, "\n") + "\n")
	store, err := loggrep.Open(loggrep.Compress(raw, loggrep.DefaultOptions()), loggrep.QueryOptions{})
	if err != nil {
		t.Fatal(err)
	}
	res, err := store.Query("ERROR AND dst:11.8.* NOT state:503")
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Lines) != 1 || res.Lines[0] != 0 {
		t.Fatalf("doc example result: %v", res.Lines)
	}
}

// TestArchivePublicAPI exercises the multi-block surface end to end.
func TestArchivePublicAPI(t *testing.T) {
	lt, _ := loggen.ByName("L")
	stream := lt.Block(6, 5000)
	opts := loggrep.DefaultArchiveOptions()
	opts.BlockBytes = 100 << 10
	data, err := loggrep.CompressArchive(stream, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !loggrep.IsArchive(data) {
		t.Fatal("IsArchive = false on an archive")
	}
	if loggrep.IsArchive(loggrep.Compress(stream, loggrep.DefaultOptions())) {
		t.Fatal("IsArchive = true on a box")
	}
	a, err := loggrep.OpenArchive(data)
	if err != nil {
		t.Fatal(err)
	}
	res, err := a.Query(lt.Query, 2)
	if err != nil {
		t.Fatal(err)
	}
	lines := logparse.SplitLines(stream)
	want := oracle(t, lines, lt.Query)
	if len(res.Lines) != len(want) {
		t.Fatalf("archive query: %d matches, want %d", len(res.Lines), len(want))
	}
	for i := range want {
		if res.Lines[i] != want[i] || res.Entries[i] != lines[want[i]] {
			t.Fatalf("archive query mismatch at %d", i)
		}
	}
}

// TestRawQueryPublicAPI covers the not-yet-compressed path.
func TestRawQueryPublicAPI(t *testing.T) {
	lt, _ := loggen.ByName("P")
	block := lt.Block(3, 1500)
	lines, entries, err := loggrep.RawQuery(block, lt.Query)
	if err != nil {
		t.Fatal(err)
	}
	want := oracle(t, logparse.SplitLines(block), lt.Query)
	if len(lines) != len(want) {
		t.Fatalf("RawQuery = %d matches, want %d", len(lines), len(want))
	}
	if len(entries) != len(lines) {
		t.Fatal("entries/lines mismatch")
	}
}
